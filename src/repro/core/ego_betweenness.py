"""Exact ego-betweenness computation (Definition 2 of the paper).

For a vertex ``p`` with neighbourhood ``N(p)``, every pair of neighbours is at
distance 1 (adjacent) or exactly 2 inside the ego network ``GE(p)`` — the pair
is always connected through ``p`` itself.  The pair-level contribution of a
non-adjacent pair ``(u, v)`` therefore is ``1 / (c + 1)`` where ``c`` is the
number of common neighbours of ``u`` and ``v`` *inside* ``N(p)``, and the
``+ 1`` accounts for ``p``.  Summing over all non-adjacent neighbour pairs
gives ``CB(p)`` (this is exactly the closed form in Lemma 2).

Three implementations are provided:

``ego_betweenness_reference``
    Literal transcription of Definition 2: builds the ego network, counts
    shortest paths between every neighbour pair with a BFS, and sums the
    ratios.  Slow; exists as ground truth for the test-suite.

``ego_betweenness``
    Wedge-based computation that only touches neighbour pairs joined by at
    least one 2-path inside the ego network (the "diamond" structures the
    paper enumerates), plus a constant-time correction for the pairs whose
    only connector is ``p``.  This is the per-vertex kernel used by both
    search algorithms and the parallel engines.

``all_ego_betweenness``
    Convenience wrapper computing the exact value for every vertex.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Optional

from repro.graph.graph import Graph, Vertex

__all__ = [
    "ego_betweenness",
    "ego_betweenness_reference",
    "all_ego_betweenness",
    "ego_pair_contributions",
]


def ego_betweenness(graph: Graph, p: Vertex) -> float:
    """Return the exact ego-betweenness ``CB(p)`` of vertex ``p``.

    Runs in time proportional to the number of wedges inside the ego network
    of ``p`` (the paper's diamond-enumeration workload) rather than the
    ``d(p)^2`` neighbour pairs.

    Examples
    --------
    >>> g = Graph(edges=[("d", x) for x in "abcghi"]
    ...                 + [("a", "b"), ("a", "c"), ("b", "c"),
    ...                    ("c", "g"), ("c", "h"), ("g", "i"), ("h", "i")])
    >>> round(ego_betweenness(g, "d"), 6) == round(14 / 3, 6)
    True
    """
    neighbors = graph.neighbors(p)
    degree = len(neighbors)
    if degree < 2:
        return 0.0

    # Restriction of each neighbour's adjacency to the ego (excluding p).
    ego_adj: Dict[Vertex, list] = {}
    for x in neighbors:
        nx = graph.neighbors(x)
        if len(nx) <= degree:
            ego_adj[x] = [w for w in nx if w != p and w in neighbors]
        else:
            ego_adj[x] = [w for w in neighbors if w != x and w in nx]

    # Number of edges between neighbours of p (twice, once per endpoint).
    edge_endpoint_count = sum(len(adj) for adj in ego_adj.values())
    edges_in_ego = edge_endpoint_count // 2

    # Count, for every non-adjacent neighbour pair joined by a 2-path inside
    # the ego, how many common neighbours (inside N(p)) it has.
    linker_counts: Dict[frozenset, int] = {}
    for w, adj in ego_adj.items():
        length = len(adj)
        if length < 2:
            continue
        for i in range(length):
            x = adj[i]
            x_neighbors = graph.neighbors(x)
            for j in range(i + 1, length):
                y = adj[j]
                if y in x_neighbors:
                    continue
                key = frozenset((x, y))
                linker_counts[key] = linker_counts.get(key, 0) + 1

    total_pairs = degree * (degree - 1) // 2
    pairs_with_links = len(linker_counts)
    # Pairs that are neither adjacent nor joined by another neighbour: p is
    # the unique connector and the contribution is exactly 1.
    lonely_pairs = total_pairs - edges_in_ego - pairs_with_links
    return _sum_pair_contributions(lonely_pairs, linker_counts.values())


def _sum_pair_contributions(lonely_pairs: int, counts: Iterable[int]) -> float:
    """Sum ``lonely_pairs + Σ 1/(c+1)`` in a canonical, order-free way.

    Contributions are grouped into a count histogram and accumulated in
    ascending count order, so the result is bit-identical no matter which
    order the wedge enumeration discovered the pairs in.  The CSR kernels
    perform the exact same accumulation, which is what makes the two
    backends agree exactly rather than merely to within float noise.
    """
    histogram: Dict[int, int] = {}
    for count in counts:
        histogram[count] = histogram.get(count, 0) + 1
    return _sum_from_histogram(lonely_pairs, histogram)


def _sum_from_histogram(lonely_pairs: int, histogram: Dict[int, int]) -> float:
    """Accumulate the canonical score sum from a connector-count histogram."""
    score = float(lonely_pairs)
    for count in sorted(histogram):
        score += histogram[count] * (1.0 / (count + 1))
    return score


def ego_pair_contributions(graph: Graph, p: Vertex) -> Dict[frozenset, float]:
    """Return the per-pair contributions ``b_uv(p)`` for every neighbour pair.

    Mainly used by tests and by the dynamic-maintenance cross-checks; the sum
    of the returned values equals ``ego_betweenness(graph, p)``.
    Pairs contributing 0 (adjacent neighbours) are included with value 0.0.
    """
    neighbor_set = graph.neighbors(p)
    neighbors = list(neighbor_set)
    contributions: Dict[frozenset, float] = {}
    for i, u in enumerate(neighbors):
        nu = graph.neighbors(u)
        for v in neighbors[i + 1 :]:
            key = frozenset((u, v))
            if v in nu:
                contributions[key] = 0.0
                continue
            common = 0
            nv = graph.neighbors(v)
            small, large = (nu, nv) if len(nu) <= len(nv) else (nv, nu)
            for w in small:
                if w != p and w in large and w in neighbor_set:
                    common += 1
            contributions[key] = 1.0 / (common + 1)
    return contributions


def ego_betweenness_reference(graph: Graph, p: Vertex) -> float:
    """Literal Definition 2: shortest-path counting inside the ego network.

    Builds ``GE(p)`` explicitly, counts shortest paths between every pair of
    neighbours with a BFS from each neighbour, and sums
    ``g_uv(p) / g_uv``.  Exponentially clearer, polynomially slower — used as
    the ground-truth oracle in unit and property-based tests.
    """
    ego = graph.ego_network(p)
    neighbors = sorted(graph.neighbors(p), key=lambda v: (type(v).__name__, repr(v)))
    total = 0.0
    for i, u in enumerate(neighbors):
        distances, path_counts, path_counts_via_p = _bfs_path_counts(ego, u, p)
        for v in neighbors[i + 1 :]:
            g_uv = path_counts.get(v, 0)
            if g_uv == 0:
                continue
            total += path_counts_via_p.get(v, 0) / g_uv
    return total


def _bfs_path_counts(ego: Graph, source: Vertex, p: Vertex):
    """BFS from ``source`` counting shortest paths and those through ``p``.

    Returns ``(distance, sigma, sigma_via_p)`` dictionaries where
    ``sigma_via_p[v]`` counts the shortest source→v paths with ``p`` as an
    interior vertex (``p`` may not be an endpoint, matching ``g_uv(p)``).
    """
    distance = {source: 0}
    sigma = {source: 1}
    via_p = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for w in ego.neighbors(v):
            if w not in distance:
                distance[w] = distance[v] + 1
                sigma[w] = 0
                via_p[w] = 0
                queue.append(w)
            if distance[w] == distance[v] + 1:
                sigma[w] += sigma[v]
                # Paths through p as an interior vertex: either the path to
                # the predecessor already passed through p, or the
                # predecessor is p itself (and p is not the BFS source).
                via_p[w] += via_p[v]
                if v == p and v != source:
                    via_p[w] += sigma[v]
    return distance, sigma, via_p


def all_ego_betweenness(
    graph: Graph, vertices: Optional[Iterable[Vertex]] = None
) -> Dict[Vertex, float]:
    """Return the exact ego-betweenness of every vertex (or a subset).

    This is the sequential all-vertex computation used as the baseline for
    the parallel engines (Section V) and by the naive top-k strategy.
    """
    targets = graph.vertices() if vertices is None else list(vertices)
    return {p: ego_betweenness(graph, p) for p in targets}
