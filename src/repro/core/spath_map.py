"""Shortest-path count maps (``S_p``) and the identified-information store.

Two closely related structures live here:

:class:`SPathMap`
    The per-vertex hash map ``S_p`` of the paper's Algorithms 1/3/5: for a
    pair ``(x, y)`` of ``p``'s neighbours it stores 0 when the pair is
    adjacent and otherwise the number of vertices (excluding ``p``) that
    connect ``x`` and ``y`` inside ``GE(p)``.  The dynamic maintenance
    algorithms of Section IV query these values; this implementation computes
    them on demand from the current graph instead of persisting
    ``O(Σ d(p)^2)`` entries, which keeps the update algorithms exact while
    bounding memory.

:class:`IdentifiedInfo`
    The "identified information" store that powers OptBSearch's dynamic
    upper bound (Lemma 3).  While a vertex ``u`` is being computed exactly,
    the triangles and diamonds touched reveal, for *other* vertices ``p``,
    edges between ``p``'s neighbours and alternative connectors for
    non-adjacent neighbour pairs.  Only facts that are certain are recorded,
    so the derived bound is always a true upper bound.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Set

from repro.core.bounds import dynamic_upper_bound, static_upper_bound
from repro.graph.graph import Graph, Vertex

__all__ = ["SPathMap", "IdentifiedInfo", "IdentifiedInfoCSR", "pair_key"]


def pair_key(u: Vertex, v: Vertex) -> FrozenSet[Vertex]:
    """Return the canonical dictionary key for the unordered pair ``{u, v}``."""
    return frozenset((u, v))


class SPathMap:
    """On-demand view of the paper's per-vertex map ``S_p``.

    ``value(p, x, y)`` returns the number of vertices other than ``p`` that
    connect ``x`` and ``y`` inside ``GE(p)`` — i.e.
    ``|N(x) ∩ N(y) ∩ N(p)|`` for a non-adjacent pair — and 0 when the pair is
    adjacent (mirroring the sentinel the paper stores for visited triangles).
    """

    __slots__ = ("_graph",)

    def __init__(self, graph: Graph) -> None:
        self._graph = graph

    def value(self, p: Vertex, x: Vertex, y: Vertex) -> int:
        """Return ``S_p(x, y)`` for the *current* state of the graph."""
        graph = self._graph
        if graph.has_edge(x, y):
            return 0
        np_ = graph.neighbors(p)
        nx = graph.neighbors(x)
        ny = graph.neighbors(y)
        # Iterate the smallest of the three sets.
        smallest = min((np_, nx, ny), key=len)
        if smallest is np_:
            return sum(1 for w in np_ if w != p and w in nx and w in ny)
        if smallest is nx:
            return sum(1 for w in nx if w != p and w in ny and w in np_)
        return sum(1 for w in ny if w != p and w in nx and w in np_)

    def contribution(self, p: Vertex, x: Vertex, y: Vertex) -> float:
        """Return the pair's contribution ``b_xy(p)`` to ``CB(p)``."""
        graph = self._graph
        if graph.has_edge(x, y):
            return 0.0
        return 1.0 / (self.value(p, x, y) + 1)


class IdentifiedInfo:
    """Identified edges and connectors per vertex, for the dynamic bound.

    The store distinguishes two kinds of facts about a vertex ``p`` that is
    *not yet* computed exactly:

    * ``record_edge(p, x, y)`` — the pair ``(x, y)`` of ``p``'s neighbours is
      adjacent, hence contributes 0 to ``CB(p)``.
    * ``record_link(p, x, y, w)`` — the non-adjacent pair ``(x, y)`` of
      ``p``'s neighbours has the alternative connector ``w`` (≠ p), hence
      contributes at most ``1/(count+1)``.

    Connectors are stored as sets so repeated discoveries of the same fact
    (e.g. from two different exact computations touching the same diamond)
    never inflate the count — inflating it could make the bound dip below
    the true value, breaking OptBSearch's correctness.
    """

    __slots__ = ("_edges", "_links")

    def __init__(self) -> None:
        self._edges: Dict[Vertex, Set[FrozenSet[Vertex]]] = {}
        self._links: Dict[Vertex, Dict[FrozenSet[Vertex], Set[Vertex]]] = {}

    def record_edge(self, p: Vertex, x: Vertex, y: Vertex) -> None:
        """Record that the pair ``(x, y)`` of ``p``'s neighbours is adjacent."""
        self._edges.setdefault(p, set()).add(pair_key(x, y))

    def record_link(self, p: Vertex, x: Vertex, y: Vertex, connector: Vertex) -> None:
        """Record that ``connector`` joins the non-adjacent pair ``(x, y)`` in ``GE(p)``."""
        pairs = self._links.setdefault(p, {})
        pairs.setdefault(pair_key(x, y), set()).add(connector)

    def identified_edge_count(self, p: Vertex) -> int:
        """Return ``∗C̄p``."""
        return len(self._edges.get(p, ()))

    def identified_links(self, p: Vertex) -> Dict[FrozenSet[Vertex], Set[Vertex]]:
        """Return the identified connector sets ``∗Ŝp(u, v)`` for vertex ``p``."""
        return self._links.get(p, {})

    def upper_bound(self, p: Vertex, degree: int) -> float:
        """Return Lemma 3's dynamic bound ``˜ub(p)`` from the recorded facts."""
        return dynamic_upper_bound(
            degree, self.identified_edge_count(p), self.identified_links(p)
        )

    def discard(self, p: Vertex) -> None:
        """Drop the stored facts for ``p`` (called after its exact computation)."""
        self._edges.pop(p, None)
        self._links.pop(p, None)

    def static_bound(self, degree: int) -> float:
        """Convenience passthrough of the static bound (Lemma 2)."""
        return static_upper_bound(degree)


class IdentifiedInfoCSR:
    """CSR-native identified-information store (packed-int fact logs).

    Mirrors :class:`IdentifiedInfo` for the compact backend, tuned for the
    observation that the searches *record* facts for thousands of touched
    vertices but *query* the bound for only a handful of popped ones.  Facts
    are appended to flat per-vertex logs of packed ints — one list append
    (or a C-level slice extend) per fact in the hot wedge loop, no set or
    nested-dict work — and aggregated lazily when :meth:`upper_bound` is
    evaluated.  Both logs key the neighbour pair ``(x, y)`` (``x < y``) as
    ``x * n + y``:

    * the *edge log* may contain duplicates (the same triangle is seen from
      both endpoints across different exact computations); they are removed
      with a ``set()`` at query time;
    * the *link log* counts by multiplicity: every exact computation of a
      vertex ``c`` appends each non-adjacent pair it connects **at most
      once** (a wedge ``x–w–y`` occurs once per ego enumeration, and each
      vertex is computed exactly once per search), so the number of log
      entries for a pair equals the number of *distinct* identified
      connectors — the quantity Lemma 3 needs.  Callers recording facts
      outside a search must uphold the same at-most-once-per-connector
      contract via :meth:`record_link`.

    Beyond plain packed ints, the kernels log *deferred references* —
    tuples pointing into the recording call's shared ego structures — so
    that the hot loop pays a single append per neighbour (edges) or per
    wedge centre (links) instead of one operation per fact:

    * edge entry ``(c, row)``: one identified edge ``(c, w)`` for every
      vertex id ``w`` in ``row``;
    * link entry ``(wedges, start, end)``: the packed pairs
      ``wedges[start:end]``, each with one (implicit) connector.
    """

    __slots__ = ("_n", "_edges", "_links", "_link_connectors")

    def __init__(self, num_vertices: int) -> None:
        self._n = num_vertices
        self._edges: Dict[int, list] = {}
        self._links: Dict[int, list] = {}
        # Guard set used only by the record_link() convenience API so that
        # out-of-search callers cannot inflate a count by re-recording the
        # same (pair, connector) fact; the kernels bypass it by contract.
        self._link_connectors: Set[tuple] = set()

    def record_edge(self, p: int, x: int, y: int) -> None:
        """Record that the pair ``(x, y)`` of ``p``'s neighbours is adjacent."""
        if x > y:
            x, y = y, x
        log = self._edges.get(p)
        if log is None:
            log = self._edges[p] = []
        log.append(x * self._n + y)

    def record_link(self, p: int, x: int, y: int, connector: int) -> None:
        """Record ``connector`` as joining the non-adjacent pair ``(x, y)`` in ``GE(p)``.

        Re-recording the same ``(p, pair, connector)`` fact is ignored, so
        the derived counts never overstate the distinct connectors.
        """
        if x > y:
            x, y = y, x
        pair = x * self._n + y
        guard = (p, pair, connector)
        if guard in self._link_connectors:
            return
        self._link_connectors.add(guard)
        log = self._links.get(p)
        if log is None:
            log = self._links[p] = []
        log.append(pair)

    def identified_edge_pairs(self, p: int) -> Set[int]:
        """Return the distinct identified-edge pair keys for ``p``."""
        log = self._edges.get(p)
        if not log:
            return set()
        n = self._n
        pairs: Set[int] = set()
        add = pairs.add
        for entry in log:
            if type(entry) is tuple:
                c, row = entry
                cn = c * n
                for w in row:
                    add(cn + w if c < w else w * n + c)
            else:
                add(entry)
        return pairs

    def identified_edge_count(self, p: int) -> int:
        """Return ``∗C̄p`` (distinct identified edges).

        Fast path for pure reference logs: within one entry ``(c, row)``
        every pair is distinct, and across entries the connectors ``c``
        differ, so the only possible duplicate of a pair ``{c_i, c_j}`` is
        its mirror recorded from the other endpoint's computation — both
        endpoints then own an entry and each lists the other, so the
        distinct count is ``Σ len(row) - |mutual listings| / 2``.
        """
        log = self._edges.get(p)
        if not log:
            return 0
        if any(type(entry) is not tuple for entry in log):
            return len(self.identified_edge_pairs(p))
        owners = {entry[0] for entry in log}
        total = 0
        mutual = 0
        intersection = owners.intersection
        for c, row in log:
            total += len(row)
            mutual += len(intersection(row))
        return total - mutual // 2

    def identified_link_counts(self, p: int) -> Dict[int, int]:
        """Return ``packed pair -> |∗Ŝp(pair)|`` (distinct connectors per pair)."""
        log = self._links.get(p)
        if not log:
            return {}
        flat: list = []
        extend = flat.extend
        for entry in log:
            if type(entry) is tuple:
                wedges, start, end = entry
                extend(wedges[start:end])
            else:
                flat.append(entry)
        return dict(Counter(flat))

    def upper_bound(self, p: int, degree: int) -> float:
        """Return Lemma 3's dynamic bound ``˜ub(p)`` from the recorded facts.

        Accumulates the per-count terms through the same sorted histogram as
        :func:`repro.core.bounds.dynamic_upper_bound`, so the two backends
        produce bit-identical bounds for identical identified facts.
        """
        bound = degree * (degree - 1) / 2.0
        if self._edges.get(p):
            bound -= self.identified_edge_count(p)
        if self._links.get(p):
            histogram = Counter(self.identified_link_counts(p).values())
            for count in sorted(histogram):
                bound -= histogram[count] * (1.0 - 1.0 / (count + 1))
        return bound

    def discard(self, p: int) -> None:
        """Drop the stored facts for ``p`` (called after its exact computation)."""
        self._edges.pop(p, None)
        self._links.pop(p, None)
