"""Shortest-path count maps (``S_p``) and the identified-information store.

Two closely related structures live here:

:class:`SPathMap`
    The per-vertex hash map ``S_p`` of the paper's Algorithms 1/3/5: for a
    pair ``(x, y)`` of ``p``'s neighbours it stores 0 when the pair is
    adjacent and otherwise the number of vertices (excluding ``p``) that
    connect ``x`` and ``y`` inside ``GE(p)``.  The dynamic maintenance
    algorithms of Section IV query these values; this implementation computes
    them on demand from the current graph instead of persisting
    ``O(Σ d(p)^2)`` entries, which keeps the update algorithms exact while
    bounding memory.

:class:`IdentifiedInfo`
    The "identified information" store that powers OptBSearch's dynamic
    upper bound (Lemma 3).  While a vertex ``u`` is being computed exactly,
    the triangles and diamonds touched reveal, for *other* vertices ``p``,
    edges between ``p``'s neighbours and alternative connectors for
    non-adjacent neighbour pairs.  Only facts that are certain are recorded,
    so the derived bound is always a true upper bound.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from repro.core.bounds import dynamic_upper_bound, static_upper_bound
from repro.graph.graph import Graph, Vertex

__all__ = ["SPathMap", "IdentifiedInfo", "pair_key"]


def pair_key(u: Vertex, v: Vertex) -> FrozenSet[Vertex]:
    """Return the canonical dictionary key for the unordered pair ``{u, v}``."""
    return frozenset((u, v))


class SPathMap:
    """On-demand view of the paper's per-vertex map ``S_p``.

    ``value(p, x, y)`` returns the number of vertices other than ``p`` that
    connect ``x`` and ``y`` inside ``GE(p)`` — i.e.
    ``|N(x) ∩ N(y) ∩ N(p)|`` for a non-adjacent pair — and 0 when the pair is
    adjacent (mirroring the sentinel the paper stores for visited triangles).
    """

    __slots__ = ("_graph",)

    def __init__(self, graph: Graph) -> None:
        self._graph = graph

    def value(self, p: Vertex, x: Vertex, y: Vertex) -> int:
        """Return ``S_p(x, y)`` for the *current* state of the graph."""
        graph = self._graph
        if graph.has_edge(x, y):
            return 0
        np_ = graph.neighbors(p)
        nx = graph.neighbors(x)
        ny = graph.neighbors(y)
        # Iterate the smallest of the three sets.
        smallest = min((np_, nx, ny), key=len)
        if smallest is np_:
            return sum(1 for w in np_ if w != p and w in nx and w in ny)
        if smallest is nx:
            return sum(1 for w in nx if w != p and w in ny and w in np_)
        return sum(1 for w in ny if w != p and w in nx and w in np_)

    def contribution(self, p: Vertex, x: Vertex, y: Vertex) -> float:
        """Return the pair's contribution ``b_xy(p)`` to ``CB(p)``."""
        graph = self._graph
        if graph.has_edge(x, y):
            return 0.0
        return 1.0 / (self.value(p, x, y) + 1)


class IdentifiedInfo:
    """Identified edges and connectors per vertex, for the dynamic bound.

    The store distinguishes two kinds of facts about a vertex ``p`` that is
    *not yet* computed exactly:

    * ``record_edge(p, x, y)`` — the pair ``(x, y)`` of ``p``'s neighbours is
      adjacent, hence contributes 0 to ``CB(p)``.
    * ``record_link(p, x, y, w)`` — the non-adjacent pair ``(x, y)`` of
      ``p``'s neighbours has the alternative connector ``w`` (≠ p), hence
      contributes at most ``1/(count+1)``.

    Connectors are stored as sets so repeated discoveries of the same fact
    (e.g. from two different exact computations touching the same diamond)
    never inflate the count — inflating it could make the bound dip below
    the true value, breaking OptBSearch's correctness.
    """

    __slots__ = ("_edges", "_links")

    def __init__(self) -> None:
        self._edges: Dict[Vertex, Set[FrozenSet[Vertex]]] = {}
        self._links: Dict[Vertex, Dict[FrozenSet[Vertex], Set[Vertex]]] = {}

    def record_edge(self, p: Vertex, x: Vertex, y: Vertex) -> None:
        """Record that the pair ``(x, y)`` of ``p``'s neighbours is adjacent."""
        self._edges.setdefault(p, set()).add(pair_key(x, y))

    def record_link(self, p: Vertex, x: Vertex, y: Vertex, connector: Vertex) -> None:
        """Record that ``connector`` joins the non-adjacent pair ``(x, y)`` in ``GE(p)``."""
        pairs = self._links.setdefault(p, {})
        pairs.setdefault(pair_key(x, y), set()).add(connector)

    def identified_edge_count(self, p: Vertex) -> int:
        """Return ``∗C̄p``."""
        return len(self._edges.get(p, ()))

    def identified_links(self, p: Vertex) -> Dict[FrozenSet[Vertex], Set[Vertex]]:
        """Return the identified connector sets ``∗Ŝp(u, v)`` for vertex ``p``."""
        return self._links.get(p, {})

    def upper_bound(self, p: Vertex, degree: int) -> float:
        """Return Lemma 3's dynamic bound ``˜ub(p)`` from the recorded facts."""
        return dynamic_upper_bound(
            degree, self.identified_edge_count(p), self.identified_links(p)
        )

    def discard(self, p: Vertex) -> None:
        """Drop the stored facts for ``p`` (called after its exact computation)."""
        self._edges.pop(p, None)
        self._links.pop(p, None)

    def static_bound(self, degree: int) -> float:
        """Convenience passthrough of the static bound (Lemma 2)."""
        return static_upper_bound(degree)
