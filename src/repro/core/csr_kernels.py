"""Vectorized wedge kernels and top-k searches for the CSR backend.

These are the compact-backend twins of the hash-set hot paths:

* :func:`ego_betweenness_csr` / :func:`all_ego_betweenness_csr` — the exact
  per-vertex kernel (Lemma 2's wedge enumeration) over CSR arrays,
* :func:`ego_bw_cal_csr` — EgoBWCal (Algorithm 3) with CSR-native
  identified-information harvesting,
* :func:`base_b_search_csr` / :func:`opt_b_search_csr` — BaseBSearch and
  OptBSearch running entirely on dense integer ids,
* :func:`bound_decomposition_csr` — the Lemma 1 decomposition.

Why this is fast in pure Python
-------------------------------
The hash kernels hash arbitrary vertex objects and allocate a ``frozenset``
per touched pair.  Here every vertex is a dense int, so

* each neighbour's adjacency is restricted to the ego by one C-level
  ``set.intersection`` against the graph's cached neighbour sets — no
  per-element Python work;
* the adjacency probe inside the wedge loops is either a set membership
  test or, on graphs small enough for the dense bitmap
  (:data:`repro.graph.csr.DENSE_ADJACENCY_VERTEX_LIMIT`), a single byte
  load at the packed pair key ``x·n + y`` itself;
* wedges are collected as packed int keys into a flat list and aggregated
  by ``collections.Counter`` (C speed) instead of two Python dict
  operations per wedge, and ``frozenset`` pair keys disappear entirely;
* identified-information recording appends *deferred references* into the
  vertex's ego structures (one append per neighbour or wedge centre) and
  the rarely-evaluated Lemma 3 bound materialises them lazily
  (:class:`repro.core.spath_map.IdentifiedInfoCSR`);
* the per-vertex ego summary (rows, wedge groups, exact score) is
  graph-static and memoised on the immutable :class:`CompactGraph`
  (:func:`_ego_summary`), so repeated top-k queries over one snapshot —
  the steady state of a production service — skip the enumeration
  entirely.

Every float accumulation goes through the same canonical sorted-histogram
summation as the hash implementations, so both backends return
**bit-identical** scores and bounds — the hash backend stays the oracle, and
the parity suite (``tests/test_csr_backend.py``) checks exact equality.
"""

from __future__ import annotations

import heapq
import time
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.bounds import BoundDecomposition
from repro.core.ego_betweenness import _sum_from_histogram
from repro.core.spath_map import IdentifiedInfoCSR
from repro.core.topk import SearchStats, TopKAccumulator, TopKResult
from repro.errors import InvalidParameterError
from repro.graph.csr import CompactGraph
from repro.graph.graph import Graph, Vertex

__all__ = [
    "as_compact",
    "ego_betweenness_csr",
    "all_ego_betweenness_csr",
    "ego_betweenness_from_arrays",
    "ego_bw_cal_csr",
    "bound_decomposition_csr",
    "base_b_search_csr",
    "opt_b_search_csr",
]

GraphLike = Union[Graph, CompactGraph]

def as_compact(source: GraphLike) -> CompactGraph:
    """Return ``source`` as a :class:`CompactGraph`, converting once if needed."""
    if isinstance(source, CompactGraph):
        return source
    if isinstance(source, Graph):
        return source.to_compact()
    raise TypeError(f"expected Graph or CompactGraph, got {type(source).__name__}")


def as_hash_graph(source: GraphLike) -> Graph:
    """Return ``source`` as a hash-set :class:`Graph`, converting if needed."""
    if isinstance(source, CompactGraph):
        return source.to_graph()
    return source


def normalize_backend(backend: str) -> str:
    """Validate a backend name and resolve ``"auto"`` to ``"compact"``.

    The single copy of the backend-selection contract shared by
    ``top_k_ego_betweenness``, ``base_b_search`` and ``opt_b_search``.
    """
    backend = backend.lower()
    if backend not in ("auto", "compact", "hash"):
        raise InvalidParameterError(
            f"unknown backend {backend!r}; use 'auto', 'compact' or 'hash'"
        )
    return "compact" if backend == "auto" else backend


# ----------------------------------------------------------------------
# Ego-network construction (shared by every kernel)
# ----------------------------------------------------------------------
def _build_neighbor_sets(indptr: Sequence[int], indices: Sequence[int]) -> List[set]:
    """Build the per-vertex neighbour-id sets from raw CSR arrays."""
    return [set(indices[indptr[i] : indptr[i + 1]]) for i in range(len(indptr) - 1)]


def _build_ego(
    indices: Sequence[int],
    nbr_sets: List[set],
    start: int,
    end: int,
) -> Tuple[List[int], List[List[int]]]:
    """Return ``(nbrs, rows)`` for the ego network of the vertex owning the slice.

    ``nbrs`` lists the neighbour ids in ascending order and ``rows[i]`` is
    the adjacency of neighbour ``i`` restricted to the ego (the centre is
    excluded automatically because it is not its own neighbour), as an
    unordered list of *global* ids.  Each restriction is one C-level
    ``set.intersection`` (which iterates the smaller operand) — no
    per-element Python work; the wedge loops canonicalise pair keys
    themselves, so row order does not matter.
    """
    nbrs = indices[start:end]
    ego_set = set(nbrs)
    intersection = ego_set.intersection
    return nbrs, [list(intersection(nbr_sets[x])) for x in nbrs]


def _enumerate_wedges(
    rows: List[List[int]],
    n: int,
    nbr_sets: List[set],
    dense: Optional[bytearray],
) -> Tuple[List[int], List[Tuple[int, int, int]]]:
    """Enumerate every wedge of an ego as ``(wedges, segments)``.

    ``wedges`` holds one packed canonical pair key ``min·n + max`` per
    non-adjacent neighbour pair per wedge centre, grouped by centre;
    ``segments`` holds ``(li, start, end)`` triples locating each centre's
    group inside ``wedges``.  Keys are collected into a flat list so the
    caller can aggregate with ``Counter`` (C speed) instead of paying two
    Python-level dict operations per wedge.  When the ``dense`` adjacency
    bitmap is available, the packed key doubles as its probe index, making
    the adjacency test a single byte load.

    This is the single copy of the hot pair loops — both the uncached
    kernel and the memoised :func:`_ego_summary` go through it, which is
    what keeps the two paths bit-identical.
    """
    wedges: List[int] = []
    append = wedges.append
    segments: List[Tuple[int, int, int]] = []
    for li, row in enumerate(rows):
        length = len(row)
        if length < 2:
            continue
        mark = len(wedges)
        if dense is None:
            for i in range(length - 1):
                x = row[i]
                adjacent = nbr_sets[x]
                base = x * n
                for y in row[i + 1 :]:
                    if y not in adjacent:
                        append(base + y if x < y else y * n + x)
        else:
            for i in range(length - 1):
                x = row[i]
                base = x * n
                for y in row[i + 1 :]:
                    key = base + y if x < y else y * n + x
                    if not dense[key]:
                        append(key)
        end_mark = len(wedges)
        if end_mark > mark:
            segments.append((li, mark, end_mark))
    return wedges, segments


def _ego_wedge_stats(
    indptr: Sequence[int],
    indices: Sequence[int],
    pid: int,
    nbr_sets: List[set],
    dense: Optional[bytearray] = None,
) -> Tuple[int, int, Dict[int, int]]:
    """Return ``(degree, edges_in_ego, linker_counts)`` for vertex ``pid``.

    ``linker_counts`` maps the packed global pair key ``x·n + y``
    (``x < y``) of every non-adjacent neighbour pair joined by at least one
    2-path to its number of connectors inside ``N(pid)``.
    """
    start = indptr[pid]
    end = indptr[pid + 1]
    d = end - start
    if d < 2:
        return d, 0, {}
    n = len(indptr) - 1
    nbrs, rows = _build_ego(indices, nbr_sets, start, end)
    wedges, _ = _enumerate_wedges(rows, n, nbr_sets, dense)
    return d, sum(map(len, rows)) // 2, Counter(wedges)


def _ego_score_id(
    indptr: Sequence[int],
    indices: Sequence[int],
    pid: int,
    nbr_sets: List[set],
    dense: Optional[bytearray] = None,
) -> float:
    """Exact ``CB(pid)`` from CSR arrays (no identified-info harvesting)."""
    d, edges_in_ego, linker_counts = _ego_wedge_stats(
        indptr, indices, pid, nbr_sets, dense
    )
    if d < 2:
        return 0.0
    total_pairs = d * (d - 1) // 2
    lonely_pairs = total_pairs - edges_in_ego - len(linker_counts)
    return _sum_from_histogram(lonely_pairs, Counter(linker_counts.values()))


# ----------------------------------------------------------------------
# Public kernels
# ----------------------------------------------------------------------
def ego_betweenness_csr(source: GraphLike, vertex: Vertex) -> float:
    """Return the exact ego-betweenness of ``vertex`` on the CSR backend.

    ``vertex`` is an *original* label; agrees bit-for-bit with
    :func:`repro.core.ego_betweenness.ego_betweenness`.

    Examples
    --------
    >>> g = Graph(edges=[("d", x) for x in "abcghi"]
    ...                 + [("a", "b"), ("a", "c"), ("b", "c"),
    ...                    ("c", "g"), ("c", "h"), ("g", "i"), ("h", "i")])
    >>> round(ego_betweenness_csr(g, "d"), 6) == round(14 / 3, 6)
    True
    """
    compact = as_compact(source)
    pid = compact.id_of(vertex)
    return _ego_score_id(
        compact.indptr, compact.indices, pid, compact.neighbor_sets(), compact.dense_adjacency()
    )


def all_ego_betweenness_csr(
    source: GraphLike, vertices: Optional[Iterable[Vertex]] = None
) -> Dict[Vertex, float]:
    """Return the exact ego-betweenness of every vertex (or a subset).

    The CSR twin of :func:`repro.core.ego_betweenness.all_ego_betweenness`;
    the neighbour-set cache is shared across all per-vertex kernel calls.
    """
    compact = as_compact(source)
    indptr, indices = compact.indptr, compact.indices
    labels = compact.labels
    nbr_sets = compact.neighbor_sets()
    dense = compact.dense_adjacency()
    if vertices is None:
        ids: Iterable[int] = range(compact.num_vertices)
    else:
        ids = [compact.id_of(v) for v in vertices]
    return {
        labels[pid]: _ego_score_id(indptr, indices, pid, nbr_sets, dense) for pid in ids
    }


def ego_betweenness_from_arrays(
    indptr: Sequence[int],
    indices: Sequence[int],
    ids: Sequence[int],
    nbr_sets: Optional[List[set]] = None,
    dense: Optional[bytearray] = None,
) -> Dict[int, float]:
    """Return ``{id: CB(id)}`` straight from raw CSR arrays.

    This is the parallel-worker entry point: workers receive the two flat
    arrays (cheap to pickle) instead of a rebuilt adjacency dictionary and
    never need labels at all.  The neighbour-set cache is built once per
    call when not supplied.
    """
    if nbr_sets is None:
        nbr_sets = _build_neighbor_sets(indptr, indices)
    return {pid: _ego_score_id(indptr, indices, pid, nbr_sets, dense) for pid in ids}


def bound_decomposition_csr(source: GraphLike, vertex: Vertex) -> BoundDecomposition:
    """Return the exact Lemma 1 decomposition for ``vertex`` (CSR-native).

    Agrees with :func:`repro.core.bounds.bound_decomposition` on every
    vertex; runs on the wedge statistics instead of pairwise set
    intersections, so it is valid only for the same simple-graph model.
    """
    compact = as_compact(source)
    pid = compact.id_of(vertex)
    d, edges_in_ego, linker_counts = _ego_wedge_stats(
        compact.indptr, compact.indices, pid, compact.neighbor_sets(), compact.dense_adjacency()
    )
    total_pairs = d * (d - 1) // 2 if d >= 2 else 0
    linked = len(linker_counts)
    return BoundDecomposition(
        adjacent_pairs=edges_in_ego,
        linked_pairs=linked,
        exclusive_pairs=total_pairs - edges_in_ego - linked,
        total_pairs=total_pairs,
    )


#: Soft cap on the number of per-vertex ego summaries memoised per
#: CompactGraph; beyond it new summaries are simply not cached.
EGO_CACHE_MAX_VERTICES = 65536

#: Soft cap on the total number of ints held by the memoised summaries of
#: one CompactGraph (a hub of degree d stores up to ~d^2/2 wedge keys, so
#: an entry-count cap alone would not bound memory).  2e7 ints is on the
#: order of a few hundred MB worst case — the working set of the hubs a
#: top-k service keeps re-evaluating.
EGO_CACHE_MAX_INTS = 20_000_000


def _ego_summary(compact: CompactGraph, pid: int, nbr_sets: List[set]):
    """Return the memoised ``(score, nbrs, rows, wedges, segments)`` of ``pid``.

    All five components are *graph-static*, so they are computed once per
    vertex and cached on the (immutable) snapshot — repeated searches over
    the same ``CompactGraph`` (the steady state of a top-k query service)
    skip the wedge enumeration entirely and only redo the search-dependent
    relevance filtering and fact recording:

    * ``score`` — the exact ``CB(pid)``;
    * ``nbrs`` / ``rows`` — the ego members and their ego-restricted
      adjacency lists (global ids);
    * ``wedges`` — one packed canonical pair key ``min·n + max`` per wedge,
      grouped by wedge centre;
    * ``segments`` — ``(li, start, end)`` triples locating each centre's
      group inside ``wedges``.
    """
    cache = compact._ego_cache
    entry = cache.get(pid)
    if entry is not None:
        return entry
    indptr, indices = compact.indptr, compact.indices
    n = compact.num_vertices
    dense = compact.dense_adjacency()
    start = indptr[pid]
    end = indptr[pid + 1]
    d = end - start
    nbrs, rows = _build_ego(indices, nbr_sets, start, end)
    wedges, segments = _enumerate_wedges(rows, n, nbr_sets, dense)
    edge_endpoints = sum(map(len, rows))
    linker_counts = Counter(wedges)
    total_pairs = d * (d - 1) // 2
    lonely_pairs = total_pairs - edge_endpoints // 2 - len(linker_counts)
    score = _sum_from_histogram(lonely_pairs, Counter(linker_counts.values()))
    entry = (score, nbrs, rows, wedges, segments)
    cost = len(wedges) + sum(map(len, rows)) + len(nbrs)
    if (
        len(cache) < EGO_CACHE_MAX_VERTICES
        and compact._ego_cache_cost + cost <= EGO_CACHE_MAX_INTS
    ):
        cache[pid] = entry
        compact._ego_cache_cost += cost
    return entry


def ego_bw_cal_csr(
    compact: CompactGraph,
    pid: int,
    info: IdentifiedInfoCSR,
    computed: bytearray,
    threshold: float = float("-inf"),
    nbr_sets: Optional[List[set]] = None,
) -> float:
    """EgoBWCal (Algorithm 3) on the CSR backend.

    Computes the exact ``CB(pid)`` and, for every *relevant* vertex touched
    by the enumeration (not yet computed, static bound above ``threshold``),
    records the identified facts exactly as the hash implementation does:
    triangle edges and diamond connectors, as deferred references into the
    vertex's memoised ego structures (see :class:`IdentifiedInfoCSR` and
    :func:`_ego_summary`).  The recorded fact set is identical to the hash
    backend's, so the resulting dynamic bounds are too.
    """
    degrees = compact.degrees
    if degrees[pid] < 2:
        return 0.0
    if nbr_sets is None:
        nbr_sets = compact.neighbor_sets()
    score, nbrs, rows, wedges, segments = _ego_summary(compact, pid, nbr_sets)

    if threshold == float("-inf"):
        # Before the top-k heap fills, every not-yet-computed vertex is
        # relevant — skip the per-neighbour bound arithmetic.
        relevant = [not computed[x] for x in nbrs]
    else:
        relevant = [
            not computed[x] and degrees[x] * (degrees[x] - 1) * 0.5 > threshold
            for x in nbrs
        ]

    # Identified edges: for the triangle (pid, x, w) the pair (pid, w) is an
    # edge of GE(x).  Logged as one deferred (pid, row) reference per
    # relevant neighbour — packed pair keys are materialised only if x's
    # bound is ever queried.
    edges_store = info._edges
    links_store = info._links
    for li in range(len(nbrs)):
        if not relevant[li]:
            continue
        row = rows[li]
        if row:
            x = nbrs[li]
            log = edges_store.get(x)
            if log is None:
                log = edges_store[x] = []
            log.append((pid, row))

    # pid connects every non-adjacent pair in a centre's segment inside
    # GE(w): certain Lemma 3 facts for w's bound, recorded as one slice
    # reference per centre.  Each pair occurs at most once per call, so
    # log multiplicity equals the number of distinct connectors.
    for li, mark, end_mark in segments:
        if relevant[li]:
            w_id = nbrs[li]
            log = links_store.get(w_id)
            if log is None:
                log = links_store[w_id] = []
            log.append((wedges, mark, end_mark))

    return score


# ----------------------------------------------------------------------
# Top-k searches
# ----------------------------------------------------------------------
def base_b_search_csr(
    source: GraphLike, k: int, maintain_shared_maps: bool = True
) -> TopKResult:
    """BaseBSearch (Algorithm 1) on the CSR backend.

    Produces the exact same entries and work counters as
    :func:`repro.core.base_search.base_b_search`; results are reported under
    the original vertex labels.
    """
    if k < 1:
        raise InvalidParameterError("k must be a positive integer")
    compact = as_compact(source)
    start = time.perf_counter()
    n = compact.num_vertices
    effective_k = min(k, n) if n else k
    stats = SearchStats(algorithm="BaseBSearch")
    if n == 0:
        stats.elapsed_seconds = time.perf_counter() - start
        return TopKResult(entries=[], k=k, stats=stats)

    indptr, indices = compact.indptr, compact.indices
    degrees = compact.degrees
    labels = compact.labels
    nbr_sets = compact.neighbor_sets()
    dense = compact.dense_adjacency()
    info = IdentifiedInfoCSR(n) if maintain_shared_maps else None
    computed = bytearray(n)
    accumulator = TopKAccumulator(effective_k)
    visited = 0
    for pid in compact.degree_order():
        dp = degrees[pid]
        upper = dp * (dp - 1) / 2.0
        if accumulator.is_full and accumulator.threshold >= upper:
            break
        if info is not None:
            score = ego_bw_cal_csr(compact, pid, info, computed, float("-inf"), nbr_sets)
            computed[pid] = 1
            info.discard(pid)
        else:
            score = _ego_score_id(indptr, indices, pid, nbr_sets, dense)
        stats.exact_computations += 1
        visited += 1
        accumulator.offer(labels[pid], score)

    stats.pruned_vertices = n - visited
    stats.elapsed_seconds = time.perf_counter() - start
    return TopKResult(entries=accumulator.ranked_entries(), k=k, stats=stats)


def opt_b_search_csr(source: GraphLike, k: int, theta: float = 1.05) -> TopKResult:
    """OptBSearch (Algorithms 2–3) on the CSR backend.

    Produces the exact same entries and work counters
    (``exact_computations``, ``bound_updates``, ``repushes``) as
    :func:`repro.core.opt_search.opt_b_search`: the heap uses the identical
    ``(bound, vertex sort key)`` ordering and the dynamic bounds are
    bit-identical, so every pop, re-push and pruning decision coincides.
    """
    if k < 1:
        raise InvalidParameterError("k must be a positive integer")
    if theta < 1.0:
        raise InvalidParameterError("theta must be >= 1")
    compact = as_compact(source)
    start = time.perf_counter()
    n = compact.num_vertices
    stats = SearchStats(algorithm="OptBSearch")
    if n == 0:
        stats.elapsed_seconds = time.perf_counter() - start
        return TopKResult(entries=[], k=k, stats=stats)

    degrees = compact.degrees
    labels = compact.labels
    effective_k = min(k, n)
    accumulator = TopKAccumulator(effective_k)
    info = IdentifiedInfoCSR(n)
    heappop = heapq.heappop
    heappush = heapq.heappush

    ties = compact.tie_keys()
    # The initial max-heap over static bounds is replaced by the cached
    # static pop order plus a small heap holding only re-pushed vertices:
    # the pop sequence is identical to the eager heap's, but a search that
    # terminates after visiting a short prefix never materialises n heap
    # entries.  ``repush_bound`` tracks the freshest bound of re-pushed
    # vertices so stale (superseded) entries from either source are
    # skipped; every other vertex's current bound is its static bound.
    order = compact.bound_order()
    pos = 0
    heap: List[Tuple[float, tuple, int]] = []
    repush_bound: Dict[int, float] = {}

    computed = bytearray(n)
    pruned = bytearray(n)
    nbr_sets = compact.neighbor_sets()

    while pos < n or heap:
        if pos < n:
            v = order[pos]
            dv = degrees[v]
            static_entry = (-(dv * (dv - 1) / 2.0), ties[v], v)
            if not heap or static_entry <= heap[0]:
                entry = static_entry
                pos += 1
            else:
                entry = heappop(heap)
        else:
            entry = heappop(heap)
        neg_bound, _, pid = entry
        stored_bound = -neg_bound
        if computed[pid] or pruned[pid]:
            continue
        dp = degrees[pid]
        current = repush_bound.get(pid)
        if current is None:
            current = dp * (dp - 1) / 2.0
        if stored_bound != current:
            continue  # stale entry superseded by a later, tighter push

        tight_bound = info.upper_bound(pid, degrees[pid])
        stats.bound_updates += 1

        if theta * tight_bound < stored_bound:
            if not accumulator.is_full or tight_bound > accumulator.threshold:
                repush_bound[pid] = tight_bound
                heappush(heap, (-tight_bound, ties[pid], pid))
                stats.repushes += 1
            else:
                pruned[pid] = 1
            continue

        if accumulator.is_full and stored_bound <= accumulator.threshold:
            break

        score = ego_bw_cal_csr(compact, pid, info, computed, accumulator.threshold, nbr_sets)
        stats.exact_computations += 1
        computed[pid] = 1
        info.discard(pid)
        accumulator.offer(labels[pid], score)

    stats.pruned_vertices = n - stats.exact_computations
    stats.elapsed_seconds = time.perf_counter() - start
    return TopKResult(entries=accumulator.ranked_entries(), k=k, stats=stats)
