"""Vectorized wedge kernels and top-k searches for the CSR backend.

These are the compact-backend twins of the hash-set hot paths:

* :func:`ego_betweenness_csr` / :func:`all_ego_betweenness_csr` — the exact
  per-vertex kernel (Lemma 2's wedge enumeration) over CSR arrays,
* :func:`ego_bw_cal_csr` — EgoBWCal (Algorithm 3) with CSR-native
  identified-information harvesting,
* :func:`base_b_search_csr` / :func:`opt_b_search_csr` — BaseBSearch and
  OptBSearch running entirely on dense integer ids,
* :func:`bound_decomposition_csr` — the Lemma 1 decomposition.

Why this is fast in pure Python
-------------------------------
The hash kernels hash arbitrary vertex objects and allocate a ``frozenset``
per touched pair.  Here every vertex is a dense int, so

* each neighbour's adjacency is restricted to the ego by one C-level
  ``set.intersection`` against the graph's cached neighbour sets — no
  per-element Python work;
* the adjacency probe inside the wedge loops is either a set membership
  test or, on graphs small enough for the dense bitmap
  (:data:`repro.graph.csr.DENSE_ADJACENCY_VERTEX_LIMIT`), a single byte
  load at the packed pair key ``x·n + y`` itself;
* wedges are collected as packed int keys into a flat list and aggregated
  by ``collections.Counter`` (C speed) instead of two Python dict
  operations per wedge, and ``frozenset`` pair keys disappear entirely;
* identified-information recording appends *deferred references* into the
  vertex's ego structures (one append per neighbour or wedge centre) and
  the rarely-evaluated Lemma 3 bound materialises them lazily
  (:class:`repro.core.spath_map.IdentifiedInfoCSR`);
* the per-vertex ego summary (rows, wedge groups, exact score) is
  graph-static and memoised on the immutable :class:`CompactGraph`
  (:func:`_ego_summary`), so repeated top-k queries over one snapshot —
  the steady state of a production service — skip the enumeration
  entirely.

Every float accumulation goes through the same canonical sorted-histogram
summation as the hash implementations, so both backends return
**bit-identical** scores and bounds — the hash backend stays the oracle, and
the parity suite (``tests/test_csr_backend.py``) checks exact equality.
"""

from __future__ import annotations

import heapq
import time
from collections import Counter, OrderedDict
from itertools import chain, combinations
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.bounds import BoundDecomposition
from repro.core.ego_betweenness import _sum_from_histogram, _sum_pair_contributions
from repro.core.spath_map import IdentifiedInfoCSR
from repro.core.topk import SearchStats, TopKAccumulator, TopKResult
from repro.errors import InvalidParameterError
from repro.graph.csr import CompactGraph
from repro.graph.dynamic_csr import DynamicCompactGraph
from repro.graph.graph import Graph, Vertex

__all__ = [
    "as_compact",
    "as_dynamic",
    "ego_betweenness_csr",
    "ego_betweenness_csr_cached",
    "all_ego_betweenness_csr",
    "ego_betweenness_from_arrays",
    "top_k_entries_from_arrays",
    "build_dense_adjacency",
    "set_neighbor_sets_cache_limit",
    "CSRChunkKernel",
    "ego_bw_cal_csr",
    "bound_decomposition_csr",
    "base_b_search_csr",
    "opt_b_search_csr",
    "dynamic_ego_score",
    "dynamic_update_corrections",
    "dynamic_affected_pairs",
    "dynamic_pair_counts",
    "correction_deltas",
]

GraphLike = Union[Graph, CompactGraph]

def as_compact(source: GraphLike) -> CompactGraph:
    """Return ``source`` as a :class:`CompactGraph`, converting once if needed."""
    if isinstance(source, CompactGraph):
        return source
    if isinstance(source, Graph):
        return source.to_compact()
    raise TypeError(f"expected Graph or CompactGraph, got {type(source).__name__}")


def as_hash_graph(source: GraphLike) -> Graph:
    """Return ``source`` as a hash-set :class:`Graph`, converting if needed."""
    if isinstance(source, (CompactGraph, DynamicCompactGraph)):
        return source.to_graph()
    return source


def as_dynamic(source, **kwargs) -> DynamicCompactGraph:
    """Return an independent :class:`DynamicCompactGraph` built from ``source``.

    The result never aliases mutable state of ``source`` — mutating it
    leaves the original graph untouched (the contract of the dynamic
    maintainers).  Keyword arguments are forwarded to the overlay
    constructor (rebuild gating knobs).
    """
    if isinstance(source, DynamicCompactGraph):
        return DynamicCompactGraph(source.snapshot(), **kwargs)
    if isinstance(source, CompactGraph):
        return DynamicCompactGraph(source, **kwargs)
    if isinstance(source, Graph):
        return DynamicCompactGraph.from_graph(source, **kwargs)
    raise TypeError(
        f"expected Graph, CompactGraph or DynamicCompactGraph, got {type(source).__name__}"
    )


#: One-line description per backend name, including the graph type each one
#: requires — the single copy behind every backend-validation error message
#: (the legacy three-value entry points here and the four-value
#: :class:`repro.session.EgoSession` negotiation).
BACKEND_DESCRIPTIONS = {
    "auto": "resolves to 'compact'",
    "compact": (
        "runs on an immutable CompactGraph CSR snapshot; a hash-set Graph "
        "is converted once up front"
    ),
    "hash": (
        "runs on the mutable hash-set Graph oracle; a CSR graph is "
        "materialised back to a Graph"
    ),
    "dynamic": (
        "runs on a mutable DynamicCompactGraph overlay, updates always "
        "accepted (EgoSession only)"
    ),
}


def describe_backends(names: Iterable[str]) -> str:
    """Render ``'name' (description)`` pairs for a backend error message."""
    return ", ".join(f"'{name}' ({BACKEND_DESCRIPTIONS[name]})" for name in names)


def normalize_backend(backend: str) -> str:
    """Validate a backend name and resolve ``"auto"`` to ``"compact"``.

    The single copy of the backend-selection contract shared by
    ``top_k_ego_betweenness``, ``base_b_search`` and ``opt_b_search``.
    """
    backend = backend.lower()
    if backend not in ("auto", "compact", "hash"):
        raise InvalidParameterError(
            f"unknown backend {backend!r}; accepted values are "
            f"{describe_backends(('auto', 'compact', 'hash'))}.  "
            "Stateful sessions (repro.session.EgoSession) additionally "
            f"accept {describe_backends(('dynamic',))}."
        )
    return "compact" if backend == "auto" else backend


# ----------------------------------------------------------------------
# Ego-network construction (shared by every kernel)
# ----------------------------------------------------------------------
def _build_neighbor_sets(indptr: Sequence[int], indices: Sequence[int]) -> List[set]:
    """Build the per-vertex neighbour-id sets from raw CSR arrays."""
    return [set(indices[indptr[i] : indptr[i + 1]]) for i in range(len(indptr) - 1)]


#: Memo of derived neighbour sets keyed by CSR buffer identity.  Values pin
#: the buffers themselves, which both keeps the ``id()`` keys valid (a
#: pinned object cannot be garbage-collected and its id recycled) and lets
#: the identity re-check below reject any coincidental key collision.
_NBR_SETS_CACHE: "OrderedDict[Tuple[int, int], tuple]" = OrderedDict()
_DEFAULT_NBR_SETS_CACHE_LIMIT = 8


def _env_nbr_sets_limit(default: int = _DEFAULT_NBR_SETS_CACHE_LIMIT) -> int:
    """Read ``REPRO_NBR_SETS_CACHE_LIMIT`` (positive int) or the default."""
    import os

    raw = os.environ.get("REPRO_NBR_SETS_CACHE_LIMIT")
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value >= 1 else default


_NBR_SETS_CACHE_LIMIT = _env_nbr_sets_limit()


def set_neighbor_sets_cache_limit(limit: "Optional[int]" = None) -> int:
    """Resize this process's neighbour-set memo; return the new limit.

    The historical capacity of 8 buffer pairs starves N-shard ×
    multi-tenant interleaving (each shard subgraph is its own buffer
    pair), so the limit is tunable: ``None`` re-reads the
    ``REPRO_NBR_SETS_CACHE_LIMIT`` environment variable (falling back to
    the built-in default of 8); an integer sets it directly.  Worker
    processes apply their pool's configured limit via the fork
    initializer (``WorkerPool(neighbor_cache_limit=…)``).  Shrinking
    evicts the least-recently-used entries immediately.
    """
    global _NBR_SETS_CACHE_LIMIT
    if limit is None:
        limit = _env_nbr_sets_limit()
    if limit < 1:
        raise InvalidParameterError("neighbour-set cache limit must be >= 1")
    _NBR_SETS_CACHE_LIMIT = limit
    while len(_NBR_SETS_CACHE) > _NBR_SETS_CACHE_LIMIT:
        _NBR_SETS_CACHE.popitem(last=False)
    return _NBR_SETS_CACHE_LIMIT


def _neighbor_sets_cached(
    indptr: Sequence[int], indices: Sequence[int]
) -> List[set]:
    """Return (possibly memoized) neighbour sets for the exact buffer pair.

    Per-chunk entry points (:func:`ego_betweenness_from_arrays`,
    :func:`top_k_entries_from_arrays`) are called many times against the
    same resident CSR arrays — one shared-memory payload serves every chunk
    of a graph version — so the derived sets are built once per buffer pair
    instead of once per call.  CSR buffers are immutable by contract
    (mutation creates a new version and new arrays), which is what makes
    identity a sound cache key.
    """
    key = (id(indptr), id(indices))
    hit = _NBR_SETS_CACHE.get(key)
    if hit is not None and hit[0] is indptr and hit[1] is indices:
        _NBR_SETS_CACHE.move_to_end(key)
        return hit[2]
    nbr_sets = _build_neighbor_sets(indptr, indices)
    _NBR_SETS_CACHE[key] = (indptr, indices, nbr_sets)
    while len(_NBR_SETS_CACHE) > _NBR_SETS_CACHE_LIMIT:
        _NBR_SETS_CACHE.popitem(last=False)
    return nbr_sets


def _build_ego(
    indices: Sequence[int],
    nbr_sets: List[set],
    start: int,
    end: int,
) -> Tuple[List[int], List[List[int]]]:
    """Return ``(nbrs, rows)`` for the ego network of the vertex owning the slice.

    ``nbrs`` lists the neighbour ids in ascending order and ``rows[i]`` is
    the adjacency of neighbour ``i`` restricted to the ego (the centre is
    excluded automatically because it is not its own neighbour), as an
    unordered list of *global* ids.  Each restriction is one C-level
    ``set.intersection`` (which iterates the smaller operand) — no
    per-element Python work; the wedge loops canonicalise pair keys
    themselves, so row order does not matter.
    """
    nbrs = indices[start:end]
    ego_set = set(nbrs)
    intersection = ego_set.intersection
    return nbrs, [list(intersection(nbr_sets[x])) for x in nbrs]


def _enumerate_wedges(
    rows: List[List[int]],
    n: int,
    nbr_sets: List[set],
    dense: Optional[bytearray],
) -> Tuple[List[int], List[Tuple[int, int, int]]]:
    """Enumerate every wedge of an ego as ``(wedges, segments)``.

    ``wedges`` holds one packed canonical pair key ``min·n + max`` per
    non-adjacent neighbour pair per wedge centre, grouped by centre;
    ``segments`` holds ``(li, start, end)`` triples locating each centre's
    group inside ``wedges``.  Keys are collected into a flat list so the
    caller can aggregate with ``Counter`` (C speed) instead of paying two
    Python-level dict operations per wedge.  When the ``dense`` adjacency
    bitmap is available, the packed key doubles as its probe index, making
    the adjacency test a single byte load.

    This is the single copy of the hot pair loops — both the uncached
    kernel and the memoised :func:`_ego_summary` go through it, which is
    what keeps the two paths bit-identical.
    """
    wedges: List[int] = []
    append = wedges.append
    segments: List[Tuple[int, int, int]] = []
    for li, row in enumerate(rows):
        length = len(row)
        if length < 2:
            continue
        mark = len(wedges)
        if dense is None:
            for i in range(length - 1):
                x = row[i]
                adjacent = nbr_sets[x]
                base = x * n
                for y in row[i + 1 :]:
                    if y not in adjacent:
                        append(base + y if x < y else y * n + x)
        else:
            for i in range(length - 1):
                x = row[i]
                base = x * n
                for y in row[i + 1 :]:
                    key = base + y if x < y else y * n + x
                    if not dense[key]:
                        append(key)
        end_mark = len(wedges)
        if end_mark > mark:
            segments.append((li, mark, end_mark))
    return wedges, segments


def _ego_wedge_stats(
    indptr: Sequence[int],
    indices: Sequence[int],
    pid: int,
    nbr_sets: List[set],
    dense: Optional[bytearray] = None,
) -> Tuple[int, int, Dict[int, int]]:
    """Return ``(degree, edges_in_ego, linker_counts)`` for vertex ``pid``.

    ``linker_counts`` maps the packed global pair key ``x·n + y``
    (``x < y``) of every non-adjacent neighbour pair joined by at least one
    2-path to its number of connectors inside ``N(pid)``.
    """
    start = indptr[pid]
    end = indptr[pid + 1]
    d = end - start
    if d < 2:
        return d, 0, {}
    n = len(indptr) - 1
    nbrs, rows = _build_ego(indices, nbr_sets, start, end)
    wedges, _ = _enumerate_wedges(rows, n, nbr_sets, dense)
    return d, sum(map(len, rows)) // 2, Counter(wedges)


def _ego_score_id(
    indptr: Sequence[int],
    indices: Sequence[int],
    pid: int,
    nbr_sets: List[set],
    dense: Optional[bytearray] = None,
) -> float:
    """Exact ``CB(pid)`` from CSR arrays (no identified-info harvesting)."""
    d, edges_in_ego, linker_counts = _ego_wedge_stats(
        indptr, indices, pid, nbr_sets, dense
    )
    if d < 2:
        return 0.0
    total_pairs = d * (d - 1) // 2
    lonely_pairs = total_pairs - edges_in_ego - len(linker_counts)
    return _sum_from_histogram(lonely_pairs, Counter(linker_counts.values()))


# ----------------------------------------------------------------------
# Public kernels
# ----------------------------------------------------------------------
def ego_betweenness_csr(source: GraphLike, vertex: Vertex) -> float:
    """Return the exact ego-betweenness of ``vertex`` on the CSR backend.

    ``vertex`` is an *original* label; agrees bit-for-bit with
    :func:`repro.core.ego_betweenness.ego_betweenness`.

    Examples
    --------
    >>> g = Graph(edges=[("d", x) for x in "abcghi"]
    ...                 + [("a", "b"), ("a", "c"), ("b", "c"),
    ...                    ("c", "g"), ("c", "h"), ("g", "i"), ("h", "i")])
    >>> round(ego_betweenness_csr(g, "d"), 6) == round(14 / 3, 6)
    True
    """
    compact = as_compact(source)
    pid = compact.id_of(vertex)
    return _ego_score_id(
        compact.indptr, compact.indices, pid, compact.neighbor_sets(), compact.dense_adjacency()
    )


def ego_betweenness_csr_cached(compact: CompactGraph, vertex: Vertex) -> float:
    """Exact ``CB(vertex)`` served from the snapshot's memoised ego summary.

    Bit-identical to :func:`ego_betweenness_csr` (both accumulate through
    the canonical sorted histogram), but repeated probes of the same vertex
    on the same snapshot cost one dict lookup — the per-vertex twin of the
    warm-search steady state.  Used by the :class:`~repro.session.EgoSession`
    ``score()`` fast path.
    """
    pid = compact.id_of(vertex)
    return _ego_summary(compact, pid, compact.neighbor_sets())[0]


def all_ego_betweenness_csr(
    source: GraphLike, vertices: Optional[Iterable[Vertex]] = None
) -> Dict[Vertex, float]:
    """Return the exact ego-betweenness of every vertex (or a subset).

    The CSR twin of :func:`repro.core.ego_betweenness.all_ego_betweenness`;
    the neighbour-set cache is shared across all per-vertex kernel calls.
    """
    compact = as_compact(source)
    indptr, indices = compact.indptr, compact.indices
    labels = compact.labels
    nbr_sets = compact.neighbor_sets()
    dense = compact.dense_adjacency()
    if vertices is None:
        ids: Iterable[int] = range(compact.num_vertices)
    else:
        ids = [compact.id_of(v) for v in vertices]
    return {
        labels[pid]: _ego_score_id(indptr, indices, pid, nbr_sets, dense) for pid in ids
    }


def ego_betweenness_from_arrays(
    indptr: Sequence[int],
    indices: Sequence[int],
    ids: Sequence[int],
    nbr_sets: Optional[List[set]] = None,
    dense: Optional[bytearray] = None,
) -> Dict[int, float]:
    """Return ``{id: CB(id)}`` straight from raw CSR arrays.

    This is the parallel-worker entry point: workers receive the two flat
    arrays (cheap to pickle) instead of a rebuilt adjacency dictionary and
    never need labels at all.  When not supplied, the neighbour sets come
    from the buffer-identity memo, so repeated chunk calls against the
    same resident arrays reuse one build.
    """
    if nbr_sets is None:
        nbr_sets = _neighbor_sets_cached(indptr, indices)
    return {pid: _ego_score_id(indptr, indices, pid, nbr_sets, dense) for pid in ids}


def top_k_entries_from_arrays(
    indptr: Sequence[int],
    indices: Sequence[int],
    ids: Iterable[int],
    k: int,
    nbr_sets: Optional[List[set]] = None,
    dense: Optional[bytearray] = None,
) -> List[Tuple[int, float]]:
    """Score ``ids``; return every candidate that can reach a global top-k.

    Returns the chunk's ``(id, score)`` entries whose score is **>= the
    chunk's k-th largest score — all threshold ties included** — in
    ascending id order (everything, when the chunk has at most ``k``
    entries).

    The tie cohort must ship whole: which tied-at-threshold entry a
    :class:`TopKAccumulator` evicts depends on the *global* arrival order
    (the heap evicts the earliest-offered tie, and ties from other chunks
    interleave), so a chunk cannot decide tie survival locally.  Entries
    strictly below the chunk threshold, however, are strictly below the
    global threshold too (a subset's k-th best never exceeds the full
    set's) and therefore never appear in the global accumulator's final
    heap — omitting them cannot change the merged result, which is what
    keeps the per-chunk reduction bit-identical to the serial sweep while
    still shipping only ``k`` entries plus threshold ties instead of every
    score.
    """
    if k < 1:
        raise InvalidParameterError("k must be a positive integer")
    if nbr_sets is None:
        nbr_sets = _neighbor_sets_cached(indptr, indices)
    entries = [
        (pid, _ego_score_id(indptr, indices, pid, nbr_sets, dense))
        for pid in sorted(ids)
    ]
    if len(entries) <= k:
        return entries
    threshold = heapq.nlargest(k, (score for _, score in entries))[-1]
    return [(pid, score) for pid, score in entries if score >= threshold]


def build_dense_adjacency(
    indptr: Sequence[int], indices: Sequence[int]
) -> Optional[bytearray]:
    """Build the flat ``n × n`` adjacency bitmap from raw CSR buffers.

    The standalone twin of :meth:`CompactGraph.dense_adjacency` for callers
    that hold only the two flat arrays (parallel workers reading a
    shared-memory segment).  Returns ``None`` above
    :data:`~repro.graph.csr.DENSE_ADJACENCY_VERTEX_LIMIT`, where the
    neighbour-set probe is used instead.
    """
    from repro.graph.csr import DENSE_ADJACENCY_VERTEX_LIMIT

    n = len(indptr) - 1
    if not 0 < n <= DENSE_ADJACENCY_VERTEX_LIMIT:
        return None
    dense = bytearray(n * n)
    for u in range(n):
        base = u * n
        for pos in range(indptr[u], indptr[u + 1]):
            dense[base + indices[pos]] = 1
    return dense


class CSRChunkKernel:
    """Reusable chunk-scoring kernel over raw CSR buffers.

    Wraps the two flat ``(indptr, indices)`` arrays — plain sequences or
    zero-copy ``memoryview`` casts of a shared-memory segment — and builds
    the derived acceleration structures (per-vertex neighbour sets and, on
    small graphs, the dense adjacency bitmap) exactly once.  A persistent
    parallel worker constructs one kernel per shipped graph version and then
    serves every vertex chunk of that version from it, so the per-call cost
    is the wedge enumeration alone.

    ``kernel`` selects the negotiated execution tier
    (:data:`repro.core.vec_kernels.KERNEL_TIERS`): ``"python"`` runs the
    interpreted wedge loops, ``"numpy"`` scores whole chunks through the
    vectorized :class:`~repro.core.vec_kernels.VectorizedChunkScorer`, and
    ``"auto"`` resolves at construction.  A numpy chunk that fails for any
    reason demotes the kernel to the python tier permanently and counts one
    ``kernel_fallbacks`` — the answer is recomputed, never lost.
    ``chunks_by_tier`` records which tier actually served each chunk.

    Scores are bit-identical to :func:`all_ego_betweenness_csr` on every
    tier (all integer counting funnels through the canonical sorted
    histogram).

    Examples
    --------
    >>> g = Graph(edges=[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    >>> cg = CompactGraph.from_graph(g)
    >>> kernel = CSRChunkKernel(cg.indptr, cg.indices)
    >>> kernel.score_chunk([0, 3]) == {0: 0.0, 3: 0.0}
    True
    """

    __slots__ = (
        "indptr",
        "indices",
        "nbr_sets",
        "dense",
        "kernel",
        "chunks_by_tier",
        "kernel_fallbacks",
        "_vec",
    )

    def __init__(
        self,
        indptr: Sequence[int],
        indices: Sequence[int],
        build_dense: bool = True,
        kernel: str = "python",
        nbr_sets: Optional[List[set]] = None,
        dense: Optional[bytearray] = None,
    ) -> None:
        from repro.core.vec_kernels import normalize_kernel

        self.indptr = indptr
        self.indices = indices
        self.nbr_sets = (
            nbr_sets if nbr_sets is not None else _neighbor_sets_cached(indptr, indices)
        )
        if dense is not None:
            self.dense = dense
        else:
            self.dense = build_dense_adjacency(indptr, indices) if build_dense else None
        self.kernel = normalize_kernel(kernel)
        self.chunks_by_tier: Dict[str, int] = {"python": 0, "numpy": 0}
        self.kernel_fallbacks = 0
        self._vec = None

    @property
    def num_vertices(self) -> int:
        """Number of vertices covered by the buffers."""
        return len(self.indptr) - 1

    def _vectorized(self):
        if self._vec is None:
            from repro.core.vec_kernels import VectorizedChunkScorer

            self._vec = VectorizedChunkScorer(
                self.indptr, self.indices, dense=self.dense
            )
        return self._vec

    def _demote(self) -> None:
        """Fall back to the python tier permanently, counting the failure."""
        self.kernel = "python"
        self.kernel_fallbacks += 1
        self._vec = None

    def score_chunk(self, ids: Iterable[int]) -> Dict[int, float]:
        """Return ``{id: CB(id)}`` for every dense vertex id in ``ids``."""
        if self.kernel == "numpy":
            id_list = list(ids)
            try:
                scores = self._vectorized().score_ids(id_list)
            except Exception:
                ids = id_list
                self._demote()
            else:
                self.chunks_by_tier["numpy"] += 1
                return scores
        self.chunks_by_tier["python"] += 1
        indptr, indices = self.indptr, self.indices
        nbr_sets, dense = self.nbr_sets, self.dense
        return {
            pid: _ego_score_id(indptr, indices, pid, nbr_sets, dense) for pid in ids
        }

    def top_chunk(self, ids: Iterable[int], k: int) -> List[Tuple[int, float]]:
        """Return the chunk's top-k candidates (threshold ties included).

        The worker-side reduction of ``top_k(parallel=)``: ``k`` entries
        plus any ties at the chunk threshold leave the worker instead of
        one score per chunk id.  See :func:`top_k_entries_from_arrays` for
        the retention contract that keeps the parent merge bit-identical
        to the serial naive ranking.
        """
        if k < 1:
            raise InvalidParameterError("k must be a positive integer")
        if self.kernel == "numpy":
            id_list = sorted(ids)
            try:
                scores = self._vectorized().score_ids(id_list)
            except Exception:
                ids = id_list
                self._demote()
            else:
                self.chunks_by_tier["numpy"] += 1
                entries = [(pid, scores[pid]) for pid in id_list]
                if len(entries) <= k:
                    return entries
                threshold = heapq.nlargest(k, (score for _, score in entries))[-1]
                return [(pid, score) for pid, score in entries if score >= threshold]
        self.chunks_by_tier["python"] += 1
        return top_k_entries_from_arrays(
            self.indptr, self.indices, ids, k, self.nbr_sets, self.dense
        )


def bound_decomposition_csr(source: GraphLike, vertex: Vertex) -> BoundDecomposition:
    """Return the exact Lemma 1 decomposition for ``vertex`` (CSR-native).

    Agrees with :func:`repro.core.bounds.bound_decomposition` on every
    vertex; runs on the wedge statistics instead of pairwise set
    intersections, so it is valid only for the same simple-graph model.
    """
    compact = as_compact(source)
    pid = compact.id_of(vertex)
    d, edges_in_ego, linker_counts = _ego_wedge_stats(
        compact.indptr, compact.indices, pid, compact.neighbor_sets(), compact.dense_adjacency()
    )
    total_pairs = d * (d - 1) // 2 if d >= 2 else 0
    linked = len(linker_counts)
    return BoundDecomposition(
        adjacent_pairs=edges_in_ego,
        linked_pairs=linked,
        exclusive_pairs=total_pairs - edges_in_ego - linked,
        total_pairs=total_pairs,
    )


#: Soft cap on the number of per-vertex ego summaries memoised per
#: CompactGraph; beyond it new summaries are simply not cached.
EGO_CACHE_MAX_VERTICES = 65536

#: Soft cap on the total number of ints held by the memoised summaries of
#: one CompactGraph (a hub of degree d stores up to ~d^2/2 wedge keys, so
#: an entry-count cap alone would not bound memory).  2e7 ints is on the
#: order of a few hundred MB worst case — the working set of the hubs a
#: top-k service keeps re-evaluating.
EGO_CACHE_MAX_INTS = 20_000_000


def _ego_summary(compact: CompactGraph, pid: int, nbr_sets: List[set]):
    """Return the memoised ``(score, nbrs, rows, wedges, segments)`` of ``pid``.

    All five components are *graph-static*, so they are computed once per
    vertex and cached on the (immutable) snapshot — repeated searches over
    the same ``CompactGraph`` (the steady state of a top-k query service)
    skip the wedge enumeration entirely and only redo the search-dependent
    relevance filtering and fact recording:

    * ``score`` — the exact ``CB(pid)``;
    * ``nbrs`` / ``rows`` — the ego members and their ego-restricted
      adjacency lists (global ids);
    * ``wedges`` — one packed canonical pair key ``min·n + max`` per wedge,
      grouped by wedge centre;
    * ``segments`` — ``(li, start, end)`` triples locating each centre's
      group inside ``wedges``.
    """
    cache = compact._ego_cache
    entry = cache.get(pid)
    if entry is not None:
        return entry
    indptr, indices = compact.indptr, compact.indices
    n = compact.num_vertices
    dense = compact.dense_adjacency()
    start = indptr[pid]
    end = indptr[pid + 1]
    d = end - start
    nbrs, rows = _build_ego(indices, nbr_sets, start, end)
    wedges, segments = _enumerate_wedges(rows, n, nbr_sets, dense)
    edge_endpoints = sum(map(len, rows))
    linker_counts = Counter(wedges)
    total_pairs = d * (d - 1) // 2
    lonely_pairs = total_pairs - edge_endpoints // 2 - len(linker_counts)
    score = _sum_from_histogram(lonely_pairs, Counter(linker_counts.values()))
    entry = (score, nbrs, rows, wedges, segments)
    cost = len(wedges) + sum(map(len, rows)) + len(nbrs)
    if (
        len(cache) < EGO_CACHE_MAX_VERTICES
        and compact._ego_cache_cost + cost <= EGO_CACHE_MAX_INTS
    ):
        cache[pid] = entry
        compact._ego_cache_cost += cost
    return entry


def ego_bw_cal_csr(
    compact: CompactGraph,
    pid: int,
    info: IdentifiedInfoCSR,
    computed: bytearray,
    threshold: float = float("-inf"),
    nbr_sets: Optional[List[set]] = None,
) -> float:
    """EgoBWCal (Algorithm 3) on the CSR backend.

    Computes the exact ``CB(pid)`` and, for every *relevant* vertex touched
    by the enumeration (not yet computed, static bound above ``threshold``),
    records the identified facts exactly as the hash implementation does:
    triangle edges and diamond connectors, as deferred references into the
    vertex's memoised ego structures (see :class:`IdentifiedInfoCSR` and
    :func:`_ego_summary`).  The recorded fact set is identical to the hash
    backend's, so the resulting dynamic bounds are too.
    """
    degrees = compact.degrees
    if degrees[pid] < 2:
        return 0.0
    if nbr_sets is None:
        nbr_sets = compact.neighbor_sets()
    score, nbrs, rows, wedges, segments = _ego_summary(compact, pid, nbr_sets)

    if threshold == float("-inf"):
        # Before the top-k heap fills, every not-yet-computed vertex is
        # relevant — skip the per-neighbour bound arithmetic.
        relevant = [not computed[x] for x in nbrs]
    else:
        relevant = [
            not computed[x] and degrees[x] * (degrees[x] - 1) * 0.5 > threshold
            for x in nbrs
        ]

    # Identified edges: for the triangle (pid, x, w) the pair (pid, w) is an
    # edge of GE(x).  Logged as one deferred (pid, row) reference per
    # relevant neighbour — packed pair keys are materialised only if x's
    # bound is ever queried.
    edges_store = info._edges
    links_store = info._links
    for li in range(len(nbrs)):
        if not relevant[li]:
            continue
        row = rows[li]
        if row:
            x = nbrs[li]
            log = edges_store.get(x)
            if log is None:
                log = edges_store[x] = []
            log.append((pid, row))

    # pid connects every non-adjacent pair in a centre's segment inside
    # GE(w): certain Lemma 3 facts for w's bound, recorded as one slice
    # reference per centre.  Each pair occurs at most once per call, so
    # log multiplicity equals the number of distinct connectors.
    for li, mark, end_mark in segments:
        if relevant[li]:
            w_id = nbrs[li]
            log = links_store.get(w_id)
            if log is None:
                log = links_store[w_id] = []
            log.append((wedges, mark, end_mark))

    return score


# ----------------------------------------------------------------------
# Top-k searches
# ----------------------------------------------------------------------
def base_b_search_csr(
    source: GraphLike, k: int, maintain_shared_maps: bool = True
) -> TopKResult:
    """BaseBSearch (Algorithm 1) on the CSR backend.

    Produces the exact same entries and work counters as
    :func:`repro.core.base_search.base_b_search`; results are reported under
    the original vertex labels.
    """
    if k < 1:
        raise InvalidParameterError("k must be a positive integer")
    compact = as_compact(source)
    start = time.perf_counter()
    n = compact.num_vertices
    effective_k = min(k, n) if n else k
    stats = SearchStats(algorithm="BaseBSearch")
    if n == 0:
        stats.elapsed_seconds = time.perf_counter() - start
        return TopKResult(entries=[], k=k, stats=stats)

    indptr, indices = compact.indptr, compact.indices
    degrees = compact.degrees
    labels = compact.labels
    nbr_sets = compact.neighbor_sets()
    dense = compact.dense_adjacency()
    info = IdentifiedInfoCSR(n) if maintain_shared_maps else None
    computed = bytearray(n)
    accumulator = TopKAccumulator(effective_k)
    visited = 0
    for pid in compact.degree_order():
        dp = degrees[pid]
        upper = dp * (dp - 1) / 2.0
        if accumulator.is_full and accumulator.threshold >= upper:
            break
        if info is not None:
            score = ego_bw_cal_csr(compact, pid, info, computed, float("-inf"), nbr_sets)
            computed[pid] = 1
            info.discard(pid)
        else:
            score = _ego_score_id(indptr, indices, pid, nbr_sets, dense)
        stats.exact_computations += 1
        visited += 1
        accumulator.offer(labels[pid], score)

    stats.pruned_vertices = n - visited
    stats.elapsed_seconds = time.perf_counter() - start
    return TopKResult(entries=accumulator.ranked_entries(), k=k, stats=stats)


def opt_b_search_csr(source: GraphLike, k: int, theta: float = 1.05) -> TopKResult:
    """OptBSearch (Algorithms 2–3) on the CSR backend.

    Produces the exact same entries and work counters
    (``exact_computations``, ``bound_updates``, ``repushes``) as
    :func:`repro.core.opt_search.opt_b_search`: the heap uses the identical
    ``(bound, vertex sort key)`` ordering and the dynamic bounds are
    bit-identical, so every pop, re-push and pruning decision coincides.
    """
    if k < 1:
        raise InvalidParameterError("k must be a positive integer")
    if theta < 1.0:
        raise InvalidParameterError("theta must be >= 1")
    compact = as_compact(source)
    start = time.perf_counter()
    n = compact.num_vertices
    stats = SearchStats(algorithm="OptBSearch")
    if n == 0:
        stats.elapsed_seconds = time.perf_counter() - start
        return TopKResult(entries=[], k=k, stats=stats)

    degrees = compact.degrees
    labels = compact.labels
    effective_k = min(k, n)
    accumulator = TopKAccumulator(effective_k)
    info = IdentifiedInfoCSR(n)
    heappop = heapq.heappop
    heappush = heapq.heappush

    ties = compact.tie_keys()
    # The initial max-heap over static bounds is replaced by the cached
    # static pop order plus a small heap holding only re-pushed vertices:
    # the pop sequence is identical to the eager heap's, but a search that
    # terminates after visiting a short prefix never materialises n heap
    # entries.  ``repush_bound`` tracks the freshest bound of re-pushed
    # vertices so stale (superseded) entries from either source are
    # skipped; every other vertex's current bound is its static bound.
    order = compact.bound_order()
    pos = 0
    heap: List[Tuple[float, tuple, int]] = []
    repush_bound: Dict[int, float] = {}

    computed = bytearray(n)
    pruned = bytearray(n)
    nbr_sets = compact.neighbor_sets()

    while pos < n or heap:
        if pos < n:
            v = order[pos]
            dv = degrees[v]
            static_entry = (-(dv * (dv - 1) / 2.0), ties[v], v)
            if not heap or static_entry <= heap[0]:
                entry = static_entry
                pos += 1
            else:
                entry = heappop(heap)
        else:
            entry = heappop(heap)
        neg_bound, _, pid = entry
        stored_bound = -neg_bound
        if computed[pid] or pruned[pid]:
            continue
        dp = degrees[pid]
        current = repush_bound.get(pid)
        if current is None:
            current = dp * (dp - 1) / 2.0
        if stored_bound != current:
            continue  # stale entry superseded by a later, tighter push

        tight_bound = info.upper_bound(pid, degrees[pid])
        stats.bound_updates += 1

        if theta * tight_bound < stored_bound:
            if not accumulator.is_full or tight_bound > accumulator.threshold:
                repush_bound[pid] = tight_bound
                heappush(heap, (-tight_bound, ties[pid], pid))
                stats.repushes += 1
            else:
                pruned[pid] = 1
            continue

        if accumulator.is_full and stored_bound <= accumulator.threshold:
            break

        score = ego_bw_cal_csr(compact, pid, info, computed, accumulator.threshold, nbr_sets)
        stats.exact_computations += 1
        computed[pid] = 1
        info.discard(pid)
        accumulator.offer(labels[pid], score)

    stats.pruned_vertices = n - stats.exact_computations
    stats.elapsed_seconds = time.perf_counter() - start
    return TopKResult(entries=accumulator.ranked_entries(), k=k, stats=stats)


# ----------------------------------------------------------------------
# Incremental kernels for the mutable CSR overlay (dynamic maintenance)
# ----------------------------------------------------------------------

#: Soft cap on the total number of linker entries held by the memoised ego
#: summaries of one DynamicCompactGraph (entries are (pair, count) items, so
#: this bounds the summary memory like EGO_CACHE_MAX_INTS bounds the static
#: ego cache).  The overlay keeps its entry count (`_summary_cost`) exact as
#: patches add and remove entries; once the cap is reached new summaries are
#: not stored until shrinkage frees budget, while existing summaries keep
#: being patched (they must stay exact), so brief overshoot is possible.
SUMMARY_CACHE_MAX_ENTRIES = 5_000_000


def dynamic_ego_score(dyn: DynamicCompactGraph, pid: int) -> float:
    """Exact ``CB(pid)`` on the mutable overlay, memoised on the overlay.

    The enumeration runs entirely on the overlay's live int neighbour sets
    and at C speed: each neighbour's ego-restricted adjacency is one set
    intersection, every *pair* inside those rows (adjacent or not) is
    streamed through ``itertools.combinations`` into one ``Counter``, and
    the few adjacent pairs — the ego's edges — are deleted from the counter
    afterwards instead of being filtered by a per-pair Python membership
    probe inside the hot loop.  The final accumulation goes through the
    canonical sorted histogram, so the result is bit-identical to
    :func:`repro.core.ego_betweenness.ego_betweenness` on the equivalent
    hash graph.

    Scores are cached per vertex; edge updates invalidate only the
    Observation-1 affected entries, so a vertex whose ego network no update
    has touched costs one dict probe.
    """
    cache = dyn._score_cache
    got = cache.get(pid)
    if got is not None:
        return got
    nbr_sets = dyn.neighbor_sets()
    nbrs = nbr_sets[pid]
    d = len(nbrs)
    summary = dyn._summaries.get(pid)
    if summary is not None:
        # The patched integer summary equals a fresh enumeration key for
        # key, so the canonical sum below is bit-identical to one.
        edges_in_ego, linker = summary
        total_pairs = d * (d - 1) // 2
        lonely_pairs = total_pairs - edges_in_ego - len(linker)
        score = _sum_from_histogram(lonely_pairs, Counter(linker.values()))
        cache[pid] = score
        return score
    if d < 2:
        if dyn.maintain_summaries:
            dyn._summaries[pid] = (0, {})
        cache[pid] = 0.0
        return 0.0
    # Sorted rows make combinations() emit every pair as an ordered (x, y)
    # tuple, so both orientations of a pair aggregate under one key.
    nbrs_list = list(nbrs)
    rows = [sorted(nbrs & nbr_sets[w]) for w in nbrs_list]
    edge_endpoints = sum(map(len, rows))
    pair_counts: Counter = Counter(
        chain.from_iterable(combinations(row, 2) for row in rows)
    )
    # Remove the adjacent pairs (the ego's edges): each edge (x, y) was
    # counted once per common neighbour inside the ego, but contributes 0.
    if pair_counts:
        pop = pair_counts.pop
        for x, row in zip(nbrs_list, rows):
            for y in row:
                if x < y:
                    pop((x, y), None)
    total_pairs = d * (d - 1) // 2
    lonely_pairs = total_pairs - edge_endpoints // 2 - len(pair_counts)
    score = _sum_from_histogram(lonely_pairs, Counter(pair_counts.values()))
    if (
        dyn.maintain_summaries
        and dyn._summary_cost + len(pair_counts) <= SUMMARY_CACHE_MAX_ENTRIES
    ):
        dyn._summaries[pid] = (edge_endpoints // 2, pair_counts)
        dyn._summary_cost += len(pair_counts)
    cache[pid] = score
    return score


def all_dynamic_ego_scores(dyn: DynamicCompactGraph) -> Dict[Vertex, float]:
    """Exact ego-betweenness of every vertex, filling the overlay's memo.

    Returns a label-keyed dict (the shape the dynamic maintainers store).
    """
    labels = dyn.labels
    return {labels[pid]: dynamic_ego_score(dyn, pid) for pid in range(dyn.num_vertices)}


def _intersection_size(a: set, b: set, c: set) -> int:
    """Return ``|a ∩ b ∩ c|``, intersecting the two smallest sets first."""
    if len(a) > len(b):
        a, b = b, a
    if len(a) > len(c):
        a, c = c, a
    joint = a & b
    return len(joint & c) if joint else 0


def dynamic_update_corrections(
    dyn: DynamicCompactGraph, uid: int, vid: int, inserting: bool
) -> Tuple[set, Dict[int, float]]:
    """Lemma 4–7 score corrections for an update of edge ``(uid, vid)``.

    Must be called *before* the topological change is applied.  Returns
    ``(common, deltas)`` where ``common`` is ``N(u) ∩ N(v)`` and ``deltas``
    maps every Observation-1 affected vertex id to the exact change of its
    ego-betweenness.

    This is the incremental fast path: instead of evaluating every affected
    pair's connector count in both the before and the after state (the
    reference implementation — :func:`dynamic_affected_pairs` /
    :func:`dynamic_pair_counts`), it exploits the closed form of the
    lemmas.  With ``L = N(u) ∩ N(v)`` and all sets read from the *current*
    state:

    * endpoint ``e``, pairs among ``L``: both endpoints of the update edge
      are connectors-elect of every such pair, so the count moves by
      exactly ±1 — one triple intersection yields both states;
    * endpoint ``e``, pairs ``(other, x)``: the pair exists only in the
      with-edge state and its count ``|N(other) ∩ N(x) ∩ N(e)|`` collapses
      to ``|L ∩ N(x)|`` — an intersection with the *small* set ``L`` (and
      when ``L`` is empty every such pair counts 0, no per-pair work at
      all);
    * common neighbour ``w``, pair ``(u, v)``: count ``|L ∩ N(w)|``,
      contributing only in the without-edge state;
    * common neighbour ``w``, pairs ``(x, v)`` / ``(x, u)`` with
      ``x ∈ N(w) ∩ N(u)`` / ``N(w) ∩ N(v)``: the other update endpoint is
      again a connector-elect, so one intersection with the small set
      ``N(w) ∩ N(other endpoint)`` yields both states (±1).

    Old and new contribution sums are accumulated through the canonical
    sorted histogram, so the deltas are bit-identical to the hash oracle's
    (which evaluates both states explicitly).
    """
    nbr_sets = dyn.neighbor_sets()
    nu = nbr_sets[uid]
    nv = nbr_sets[vid]
    common = nu & nv if len(nu) <= len(nv) else nv & nu
    common_list = list(common)
    # Count shift of a pair whose connector set gains/loses an update
    # endpoint: +1 when inserting, -1 when deleting.
    shift = 1 if inserting else -1
    deltas: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Endpoints (Lemmas 4 and 6)
    # ------------------------------------------------------------------
    for endpoint, other in ((uid, vid), (vid, uid)):
        ne = nbr_sets[endpoint]
        old_hist: Dict[int, int] = {}
        new_hist: Dict[int, int] = {}
        # Pairs among the common neighbours: the count moves by `shift`.
        for i, x in enumerate(common_list):
            sx = nbr_sets[x]
            for y in common_list[i + 1 :]:
                if y in sx:
                    continue
                count = _intersection_size(sx, nbr_sets[y], ne)
                old_hist[count] = old_hist.get(count, 0) + 1
                count += shift
                new_hist[count] = new_hist.get(count, 0) + 1
        # Appearing/vanishing pairs (other, x): contribute only in the
        # with-edge state, with the state-independent count |L ∩ N(x)|.
        with_edge_hist = old_hist if not inserting else new_hist
        if not common:
            bulk = len(ne) - (0 if inserting else 1)  # minus `other` itself
            if bulk:
                with_edge_hist[0] = with_edge_hist.get(0, 0) + bulk
        else:
            for x in ne:
                if x == other or x in common:
                    continue
                count = len(common & nbr_sets[x])
                with_edge_hist[count] = with_edge_hist.get(count, 0) + 1
        delta = _sum_from_histogram(0, new_hist) - _sum_from_histogram(0, old_hist)
        deltas[endpoint] = delta

    # ------------------------------------------------------------------
    # Common neighbours (Lemmas 5 and 7)
    # ------------------------------------------------------------------
    for w in common_list:
        nw = nbr_sets[w]
        old_hist = {}
        new_hist = {}
        # The pair (u, v) itself: non-adjacent (count |L ∩ N(w)|) in the
        # without-edge state, adjacent (contribution 0) in the other.
        count = len(common & nw) if len(common) <= len(nw) else len(nw & common)
        without_edge_hist = old_hist if inserting else new_hist
        without_edge_hist[count] = without_edge_hist.get(count, 0) + 1
        # Pairs (x, v) / (x, u): the other endpoint is a connector-elect.
        cw_u = nw & nu if len(nw) <= len(nu) else nu & nw
        cw_v = nw & nv if len(nw) <= len(nv) else nv & nw
        for members, anchor_set, other_side in ((cw_u, nv, cw_v), (cw_v, nu, cw_u)):
            for x in members:
                if x == uid or x == vid or x in anchor_set:
                    continue
                count = len(other_side & nbr_sets[x])
                old_hist[count] = old_hist.get(count, 0) + 1
                count += shift
                new_hist[count] = new_hist.get(count, 0) + 1
        deltas[w] = _sum_from_histogram(0, new_hist) - _sum_from_histogram(0, old_hist)

    return common, deltas


def dynamic_affected_pairs(
    dyn: DynamicCompactGraph, uid: int, vid: int
) -> Tuple[set, Dict[int, set]]:
    """Enumerate the Lemma 4–7 affected pairs of an update of ``(uid, vid)``.

    Must be called *before* the topological change is applied (for an
    insertion the edge is still absent, for a deletion still present —
    either way ``N(u) ∩ N(v)`` and the enumerated pair set match the hash
    oracle's enumeration exactly).  Returns ``(common, pair_map)`` where
    ``pair_map`` maps each affected vertex id to the set of packed pair
    keys ``min·n + max`` whose contribution the update may change:

    * for each endpoint: the pairs among the common neighbours ``L`` plus
      the appearing/vanishing pairs ``(other endpoint, x)``,
    * for each common neighbour ``w``: the pair ``(u, v)`` plus the pairs
      ``(x, v)`` / ``(x, u)`` with ``x ∈ N(w)`` adjacent to the other
      endpoint.
    """
    nbr_sets = dyn.neighbor_sets()
    n = dyn.num_vertices
    nbr_u = nbr_sets[uid]
    nbr_v = nbr_sets[vid]
    common = dyn.common_neighbor_ids(uid, vid)
    common_list = list(common)
    pair_map: Dict[int, set] = {uid: set(), vid: set()}

    for endpoint, other in ((uid, vid), (vid, uid)):
        bucket = pair_map[endpoint]
        add = bucket.add
        for i, x in enumerate(common_list):
            base = x * n
            for y in common_list[i + 1 :]:
                add(base + y if x < y else y * n + x)
        for x in nbr_sets[endpoint]:
            if x != other:
                add(other * n + x if other < x else x * n + other)

    uv_key = uid * n + vid if uid < vid else vid * n + uid
    for w in common_list:
        bucket = pair_map.setdefault(w, set())
        add = bucket.add
        add(uv_key)
        for x in nbr_sets[w]:
            if x == uid or x == vid:
                continue
            if x in nbr_u:
                add(x * n + vid if x < vid else vid * n + x)
            if x in nbr_v:
                add(x * n + uid if x < uid else uid * n + x)
    return common, pair_map


def dynamic_pair_counts(
    dyn: DynamicCompactGraph, pair_map: Dict[int, set]
) -> Dict[int, Dict[int, int]]:
    """Evaluate the connector counts of the affected pairs in the current state.

    For every affected vertex ``p`` and packed pair ``(x, y)`` the result
    stores ``|N(x) ∩ N(y) ∩ N(p)|`` — the ``S_p`` value of the paper — for
    exactly the pairs that currently *contribute* to ``CB(p)`` (both members
    in ``N(p)`` and non-adjacent).  Adjacent or vanished pairs contribute 0
    and are simply omitted, which is what lets the before/after difference
    handle appearing and vanishing pairs uniformly.
    """
    nbr_sets = dyn.neighbor_sets()
    n = dyn.num_vertices
    counts: Dict[int, Dict[int, int]] = {}
    for pid, keys in pair_map.items():
        nbr_p = nbr_sets[pid]
        per: Dict[int, int] = {}
        for key in keys:
            x, y = divmod(key, n)
            if x not in nbr_p or y not in nbr_p:
                continue
            sx = nbr_sets[x]
            if y in sx:
                continue
            # |N(x) ∩ N(y) ∩ N(p)|; p itself is never a member of N(p), so
            # no explicit "w != p" filter is needed.
            per[key] = _intersection_size(nbr_p, sx, nbr_sets[y])
        counts[pid] = per
    return counts


def correction_deltas(
    old: Dict[int, Dict[int, int]], new: Dict[int, Dict[int, int]]
) -> Dict[int, float]:
    """Per-vertex score corrections from before/after connector counts.

    Each vertex's old and new contribution sums are accumulated through the
    canonical sorted histogram (:func:`_sum_pair_contributions`), exactly as
    the hash oracle does, so the resulting deltas — and therefore the
    maintained scores — are bit-identical across backends.
    """
    return {
        pid: _sum_pair_contributions(0, new[pid].values())
        - _sum_pair_contributions(0, old_counts.values())
        for pid, old_counts in old.items()
    }
