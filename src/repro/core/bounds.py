"""Upper bounds on ego-betweenness (Lemmas 1–3 of the paper).

* ``static_upper_bound``: Lemma 2's ``ub(p) = d(p)(d(p)-1)/2`` — the number of
  neighbour pairs of ``p``; it never underestimates ``CB(p)`` because every
  pair contributes at most 1.
* ``dynamic_upper_bound``: Lemma 3's ``˜ub(p)``, tightened by "identified
  information" gathered while other vertices were computed exactly — known
  edges between ``p``'s neighbours (which contribute 0) and known alternative
  connectors for non-adjacent pairs (which cap the pair's contribution at
  ``1/(|identified connectors| + 1)``).
* ``bound_decomposition``: the exact three-way split of Lemma 1
  (``C̄p + Ĉp + C̈p = d(p)(d(p)-1)/2``), exposed for tests and analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Set

from repro.graph.graph import Graph, Vertex

__all__ = [
    "static_upper_bound",
    "dynamic_upper_bound",
    "bound_decomposition",
    "BoundDecomposition",
]


def static_upper_bound(degree: int) -> float:
    """Return Lemma 2's static upper bound ``d (d - 1) / 2`` for a degree."""
    if degree < 0:
        raise ValueError("degree must be non-negative")
    return degree * (degree - 1) / 2.0


def dynamic_upper_bound(
    degree: int,
    identified_edges: int,
    identified_link_counts: Mapping[frozenset, int] | Mapping[frozenset, Set[Vertex]],
) -> float:
    """Return Lemma 3's dynamic upper bound ``˜ub(p)``.

    Parameters
    ----------
    degree:
        ``d(p)``.
    identified_edges:
        ``∗C̄p`` — the number of neighbour pairs of ``p`` currently known to
        be adjacent (each such pair contributes 0 to ``CB(p)``).
    identified_link_counts:
        For every neighbour pair currently known to be non-adjacent, the
        identified alternative connectors — either the count or the set of
        connector vertices.  Each such pair contributes at most
        ``1/(count + 1)``.

    Notes
    -----
    Because the identified sets are always subsets of the true sets
    (``∗C̄p ≤ C̄p``, ``|∗Ŝp(u,v)| ≤ |Ŝp(u,v)|``), the returned value never
    drops below the true ``CB(p)`` — this is exactly Lemma 3's argument and
    is re-verified by the property-based tests.
    """
    # The per-count terms are grouped into a histogram and applied in
    # ascending count order so the result does not depend on dict iteration
    # order — the CSR identified-information store performs the identical
    # accumulation, keeping the two backends' bounds bit-identical.
    histogram: Dict[int, int] = {}
    for value in identified_link_counts.values():
        count = len(value) if isinstance(value, (set, frozenset)) else int(value)
        if count > 0:
            histogram[count] = histogram.get(count, 0) + 1
    bound = static_upper_bound(degree) - identified_edges
    for count in sorted(histogram):
        bound -= histogram[count] * (1.0 - 1.0 / (count + 1))
    return bound


@dataclass(frozen=True)
class BoundDecomposition:
    """The Lemma 1 decomposition of the neighbour pairs of a vertex.

    Attributes
    ----------
    adjacent_pairs:
        ``C̄p`` — neighbour pairs that are adjacent.
    linked_pairs:
        ``Ĉp`` — non-adjacent pairs with at least one connector ≠ p.
    exclusive_pairs:
        ``C̈p`` — non-adjacent pairs whose only connector is p.
    total_pairs:
        ``d(p)(d(p)-1)/2``.
    """

    adjacent_pairs: int
    linked_pairs: int
    exclusive_pairs: int
    total_pairs: int

    @property
    def is_consistent(self) -> bool:
        """Lemma 1: the three categories partition all neighbour pairs."""
        return self.adjacent_pairs + self.linked_pairs + self.exclusive_pairs == self.total_pairs


def bound_decomposition(graph: Graph, p: Vertex) -> BoundDecomposition:
    """Return the exact Lemma 1 decomposition for vertex ``p``."""
    neighbors = list(graph.neighbors(p))
    degree = len(neighbors)
    total_pairs = degree * (degree - 1) // 2
    adjacent = 0
    linked = 0
    exclusive = 0
    neighbor_set = graph.neighbors(p)
    for i, u in enumerate(neighbors):
        nu = graph.neighbors(u)
        for v in neighbors[i + 1 :]:
            if v in nu:
                adjacent += 1
                continue
            nv = graph.neighbors(v)
            small, large = (nu, nv) if len(nu) <= len(nv) else (nv, nu)
            has_connector = any(w != p and w in large and w in neighbor_set for w in small)
            if has_connector:
                linked += 1
            else:
                exclusive += 1
    return BoundDecomposition(
        adjacent_pairs=adjacent,
        linked_pairs=linked,
        exclusive_pairs=exclusive,
        total_pairs=total_pairs,
    )
