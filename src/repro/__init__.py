"""``repro`` — Efficient Top-k Ego-Betweenness Search (ICDE 2022), in Python.

A from-scratch reproduction of the paper's full system:

* the graph substrate (adjacency graph, degree-order orientation, triangle
  enumeration, generators, edge-list I/O) — :mod:`repro.graph`;
* exact ego-betweenness and the two top-k search algorithms with upper-bound
  pruning, BaseBSearch and OptBSearch — :mod:`repro.core`;
* dynamic maintenance under edge insertions/deletions, both the local
  all-vertex index and the lazy top-k maintainer — :mod:`repro.dynamic`;
* the vertex- and edge-parallel all-vertex engines, executed on shared
  serving infrastructure — reference-counted worker pools
  (:class:`repro.parallel.WorkerPool`), a multi-tenant shared-memory
  payload store keyed by ``(graph_id, version)``
  (:class:`repro.parallel.PayloadStore`) and the per-caller
  :class:`repro.parallel.ExecutionRuntime` composing them —
  :mod:`repro.parallel`;
* the async multi-tenant serving layer: a micro-batching gateway that
  coalesces concurrent requests into shared runtime passes
  (:class:`repro.serving.ServingGateway`) — :mod:`repro.serving`;
* the durability plane: a CRC-framed write-ahead log for the update
  stream, self-verifying CSR checkpoints and checkpoint+replay crash
  recovery (:class:`repro.durability.WriteAheadLog`,
  :func:`repro.durability.recover`) — :mod:`repro.durability`;
* the Brandes betweenness baseline (TopBW) — :mod:`repro.baselines`;
* synthetic dataset stand-ins and the experiment harness reproducing every
  table and figure of the evaluation — :mod:`repro.datasets`,
  :mod:`repro.experiments`.

The canonical API is the stateful :class:`repro.session.EgoSession` facade:
one object owns the graph, negotiates the storage backend once
(``auto | compact | hash | dynamic``), keeps every memoised structure warm
across queries, and promotes itself from static search to dynamic
maintenance the moment the first edge update arrives.  The classic free
functions (:func:`top_k_ego_betweenness`, :func:`base_b_search`,
:func:`opt_b_search`) remain as documented compatibility wrappers — each
call runs through a throwaway session and returns bit-identical results.

Quickstart
----------
>>> from repro import EgoSession
>>> session = EgoSession([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5)])
>>> len(session.top_k(2).entries)
2
>>> session.apply(("insert", 4, 0))  # static -> dynamic promotion
1
>>> session.stats().state
'dynamic'
"""

from repro.baselines import top_k_betweenness
from repro.durability import (
    CheckpointStore,
    DurabilityManager,
    RecoveryReport,
    WriteAheadLog,
)
from repro.core import (
    SearchStats,
    TopKResult,
    all_ego_betweenness,
    base_b_search,
    ego_betweenness,
    opt_b_search,
    static_upper_bound,
    top_k_ego_betweenness,
)
from repro.dynamic import EgoBetweennessIndex, LazyTopKMaintainer
from repro.errors import BackendCapabilityError, ReproError
from repro.graph import Graph
from repro.parallel import (
    ExecutionRuntime,
    PayloadStore,
    RuntimeStats,
    WorkerPool,
    edge_parallel_ego_betweenness,
    shared_payload_store,
    shared_worker_pool,
    vertex_parallel_ego_betweenness,
)
from repro.net import EgoClient, EgoServer, ServerStats, run_slo_benchmark
from repro.serving import GatewayStats, ServingGateway
from repro.session import EgoSession, Query, SessionStats

__version__ = "1.6.0"

__all__ = [
    "__version__",
    "EgoSession",
    "Query",
    "SessionStats",
    "Graph",
    "ReproError",
    "BackendCapabilityError",
    "ego_betweenness",
    "all_ego_betweenness",
    "static_upper_bound",
    "base_b_search",
    "opt_b_search",
    "top_k_ego_betweenness",
    "TopKResult",
    "SearchStats",
    "EgoBetweennessIndex",
    "LazyTopKMaintainer",
    "vertex_parallel_ego_betweenness",
    "edge_parallel_ego_betweenness",
    "ExecutionRuntime",
    "WorkerPool",
    "PayloadStore",
    "shared_worker_pool",
    "shared_payload_store",
    "RuntimeStats",
    "ServingGateway",
    "GatewayStats",
    "EgoServer",
    "ServerStats",
    "EgoClient",
    "run_slo_benchmark",
    "WriteAheadLog",
    "CheckpointStore",
    "DurabilityManager",
    "RecoveryReport",
    "top_k_betweenness",
]
