"""Seeded synthetic graph generators.

The paper evaluates on five SNAP datasets that cannot be redistributed or
downloaded in this offline environment, so the reproduction substitutes
synthetic graphs whose *structural class* matches each dataset (power-law
social networks, extremely skewed communication networks, clique-heavy
collaboration networks).  All generators take an explicit integer ``seed``
and use a private :class:`random.Random` instance, so every dataset in the
registry is reproducible bit-for-bit across runs and machines.

The generators are written from scratch (no networkx dependency) because the
graph substrate itself is part of the system under reproduction.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph

__all__ = [
    "empty_graph",
    "complete_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "powerlaw_cluster_graph",
    "watts_strogatz_graph",
    "planted_partition_graph",
    "overlapping_cliques_graph",
    "random_bipartite_expansion_graph",
]


# ----------------------------------------------------------------------
# Deterministic elementary graphs
# ----------------------------------------------------------------------
def empty_graph(n: int) -> Graph:
    """Return a graph with ``n`` isolated vertices labelled ``0..n-1``."""
    _require(n >= 0, "n must be non-negative")
    return Graph(vertices=range(n))


def complete_graph(n: int) -> Graph:
    """Return the complete graph ``K_n``."""
    _require(n >= 0, "n must be non-negative")
    g = empty_graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v)
    return g


def path_graph(n: int) -> Graph:
    """Return the path ``P_n`` on vertices ``0..n-1``."""
    _require(n >= 0, "n must be non-negative")
    g = empty_graph(n)
    for u in range(n - 1):
        g.add_edge(u, u + 1)
    return g


def cycle_graph(n: int) -> Graph:
    """Return the cycle ``C_n`` (requires ``n >= 3``)."""
    _require(n >= 3, "a cycle requires at least 3 vertices")
    g = path_graph(n)
    g.add_edge(n - 1, 0)
    return g


def star_graph(n_leaves: int) -> Graph:
    """Return a star with centre ``0`` and ``n_leaves`` leaves ``1..n``."""
    _require(n_leaves >= 0, "n_leaves must be non-negative")
    g = empty_graph(n_leaves + 1)
    for leaf in range(1, n_leaves + 1):
        g.add_edge(0, leaf)
    return g


# ----------------------------------------------------------------------
# Random models
# ----------------------------------------------------------------------
def erdos_renyi_graph(n: int, p: float, seed: int = 0) -> Graph:
    """Return a ``G(n, p)`` Erdős–Rényi graph.

    Uses the geometric skipping technique so the cost is proportional to the
    number of generated edges rather than ``n^2`` for sparse graphs.
    """
    _require(n >= 0, "n must be non-negative")
    _require(0.0 <= p <= 1.0, "p must lie in [0, 1]")
    rng = random.Random(seed)
    g = empty_graph(n)
    if p == 0.0 or n < 2:
        return g
    if p == 1.0:
        return complete_graph(n)

    import math

    log_q = math.log(1.0 - p)
    v, w = 1, -1
    while v < n:
        r = rng.random()
        w = w + 1 + int(math.log(1.0 - r) / log_q)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            g.add_edge(v, w)
    return g


def barabasi_albert_graph(n: int, m: int, seed: int = 0) -> Graph:
    """Return a Barabási–Albert preferential-attachment graph.

    Starts from a star on ``m + 1`` vertices; each new vertex attaches to
    ``m`` distinct existing vertices chosen proportionally to degree.
    Produces the heavy-tailed degree distributions typical of the social
    networks (Youtube, Pokec, LiveJournal) used in the paper.
    """
    _require(n >= 1, "n must be positive")
    _require(1 <= m < n, "m must satisfy 1 <= m < n")
    rng = random.Random(seed)
    g = star_graph(m)  # vertices 0..m, centre 0
    # The repeated-endpoints list implements preferential attachment:
    # a vertex appears once per incident edge.
    repeated: List[int] = []
    for u, v in g.edges():
        repeated.append(u)
        repeated.append(v)
    for new_vertex in range(m + 1, n):
        targets: Set[int] = set()
        while len(targets) < m:
            targets.add(rng.choice(repeated))
        for t in targets:
            g.add_edge(new_vertex, t)
            repeated.append(new_vertex)
            repeated.append(t)
    return g


def powerlaw_cluster_graph(n: int, m: int, p: float, seed: int = 0) -> Graph:
    """Return a Holme–Kim power-law graph with tunable clustering.

    Like Barabási–Albert, but after each preferential attachment step a
    triangle-closing step connects the new vertex to a random neighbour of
    the previously chosen target with probability ``p``.  Higher ``p`` yields
    more triangles, which matters for ego-betweenness workloads because the
    cost of each exact computation is driven by triangle density.
    """
    _require(n >= 1, "n must be positive")
    _require(1 <= m < n, "m must satisfy 1 <= m < n")
    _require(0.0 <= p <= 1.0, "p must lie in [0, 1]")
    rng = random.Random(seed)
    g = star_graph(m)
    repeated: List[int] = []
    for u, v in g.edges():
        repeated.append(u)
        repeated.append(v)
    for new_vertex in range(m + 1, n):
        added: Set[int] = set()
        attempts = 0
        last_target: Optional[int] = None
        while len(added) < m and attempts < 20 * m:
            attempts += 1
            if last_target is not None and rng.random() < p:
                # Triangle-closing step: pick a neighbour of the last target.
                candidates = [
                    w for w in g.neighbors(last_target) if w != new_vertex and w not in added
                ]
                if candidates:
                    target = rng.choice(candidates)
                else:
                    target = rng.choice(repeated)
            else:
                target = rng.choice(repeated)
            if target == new_vertex or target in added:
                continue
            g.add_edge(new_vertex, target)
            added.add(target)
            repeated.append(new_vertex)
            repeated.append(target)
            last_target = target
    return g


def watts_strogatz_graph(n: int, k: int, p: float, seed: int = 0) -> Graph:
    """Return a Watts–Strogatz small-world graph.

    Every vertex starts connected to its ``k`` nearest ring neighbours
    (``k`` must be even); each edge is rewired to a uniformly random endpoint
    with probability ``p``.
    """
    _require(n >= 3, "n must be at least 3")
    _require(k >= 2 and k % 2 == 0, "k must be an even integer >= 2")
    _require(k < n, "k must be smaller than n")
    _require(0.0 <= p <= 1.0, "p must lie in [0, 1]")
    rng = random.Random(seed)
    g = empty_graph(n)
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            g.add_edge(u, (u + offset) % n, exist_ok=True)
    if p == 0.0:
        return g
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % n
            if rng.random() < p and g.has_edge(u, v):
                candidates = [w for w in range(n) if w != u and not g.has_edge(u, w)]
                if not candidates:
                    continue
                w = rng.choice(candidates)
                g.remove_edge(u, v)
                g.add_edge(u, w)
    return g


def planted_partition_graph(
    sizes: Sequence[int], p_in: float, p_out: float, seed: int = 0
) -> Graph:
    """Return a planted-partition (stochastic block) graph.

    Vertices are split into blocks of the given ``sizes``; within-block pairs
    are connected with probability ``p_in`` and cross-block pairs with
    ``p_out``.  Used for the communication-network stand-in, whose hubs
    bridge otherwise weakly connected groups.
    """
    _require(all(s >= 0 for s in sizes), "block sizes must be non-negative")
    _require(0.0 <= p_in <= 1.0 and 0.0 <= p_out <= 1.0, "probabilities must lie in [0, 1]")
    rng = random.Random(seed)
    n = sum(sizes)
    g = empty_graph(n)
    block_of: List[int] = []
    for block_index, size in enumerate(sizes):
        block_of.extend([block_index] * size)
    for u in range(n):
        for v in range(u + 1, n):
            probability = p_in if block_of[u] == block_of[v] else p_out
            if probability > 0.0 and rng.random() < probability:
                g.add_edge(u, v)
    return g


def overlapping_cliques_graph(
    num_cliques: int,
    clique_size_range: Tuple[int, int] = (3, 8),
    overlap: int = 1,
    extra_edges: int = 0,
    seed: int = 0,
) -> Graph:
    """Return a collaboration-style graph built from overlapping cliques.

    Models co-authorship networks (the DBLP dataset and the DB / IR case
    study graphs): every paper contributes a clique over its authors, and
    prolific authors appear in many cliques, producing the high-degree
    "bridge" vertices the case study highlights.

    Parameters
    ----------
    num_cliques:
        Number of cliques ("papers") to generate.
    clique_size_range:
        Inclusive ``(low, high)`` range for clique sizes.
    overlap:
        Number of members of each new clique drawn from already-used
        vertices (creating inter-clique bridges).  The remaining members are
        fresh vertices.
    extra_edges:
        Additional random edges sprinkled between existing vertices.
    """
    _require(num_cliques >= 1, "num_cliques must be positive")
    low, high = clique_size_range
    _require(2 <= low <= high, "clique_size_range must satisfy 2 <= low <= high")
    _require(overlap >= 0, "overlap must be non-negative")
    _require(extra_edges >= 0, "extra_edges must be non-negative")

    rng = random.Random(seed)
    g = Graph()
    used: List[int] = []
    next_vertex = 0
    for _ in range(num_cliques):
        size = rng.randint(low, high)
        members: List[int] = []
        if used and overlap > 0:
            # A few vertices are re-used; prolific vertices (appearing often
            # in ``used``) are proportionally more likely to be picked,
            # mimicking preferential attachment of productive authors.
            reused = rng.sample(used, k=min(overlap, len(set(used))))
            members.extend(dict.fromkeys(reused))
        while len(members) < size:
            members.append(next_vertex)
            next_vertex += 1
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                if u != v:
                    g.add_edge(u, v, exist_ok=True)
        used.extend(members)
    vertices = g.vertices()
    for _ in range(extra_edges):
        u, v = rng.sample(vertices, 2)
        if not g.has_edge(u, v):
            g.add_edge(u, v)
    return g


def random_bipartite_expansion_graph(
    num_hubs: int, num_leaves: int, attachments: int = 2, seed: int = 0
) -> Graph:
    """Return a hub-and-spoke graph with extreme degree skew.

    A small set of hubs receives attachments from a large set of leaves; a
    sparse hub-hub backbone connects the hubs.  This reproduces the degree
    profile of the WikiTalk communication network (a handful of vertices with
    five-digit degrees, the vast majority with degree 1–3), which is the
    regime where the static upper bound ``d(d-1)/2`` is least tight and the
    dynamic bound of OptBSearch pays off most.
    """
    _require(num_hubs >= 1, "num_hubs must be positive")
    _require(num_leaves >= 0, "num_leaves must be non-negative")
    _require(attachments >= 1, "attachments must be positive")
    rng = random.Random(seed)
    g = empty_graph(num_hubs + num_leaves)
    hubs = list(range(num_hubs))
    # Hub backbone: a sparse random tree plus a few chords.
    for i in range(1, num_hubs):
        g.add_edge(i, rng.randrange(i), exist_ok=True)
    for _ in range(num_hubs // 2):
        u, v = rng.sample(hubs, 2)
        g.add_edge(u, v, exist_ok=True)
    # Leaves attach preferentially to low-index hubs (Zipf-like skew).
    weights = [1.0 / (rank + 1) for rank in range(num_hubs)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)

    def pick_hub() -> int:
        r = rng.random()
        for index, threshold in enumerate(cumulative):
            if r <= threshold:
                return index
        return num_hubs - 1

    for leaf_offset in range(num_leaves):
        leaf = num_hubs + leaf_offset
        chosen: Set[int] = set()
        while len(chosen) < min(attachments, num_hubs):
            chosen.add(pick_hub())
        for hub in chosen:
            g.add_edge(leaf, hub, exist_ok=True)
    return g


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise InvalidParameterError(message)
