"""Structural validation helpers used by tests and the experiment harness."""

from __future__ import annotations

from typing import List

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.graph.orientation import OrientedGraph

__all__ = ["validate_simple_graph", "validate_orientation"]


def validate_simple_graph(graph: Graph) -> None:
    """Check the internal consistency of a :class:`Graph`.

    Verifies that adjacency is symmetric, that no self-loop exists and that
    the cached edge count matches the adjacency structure.  Raises
    :class:`GraphError` on the first violation.
    """
    half_edges = 0
    for v in graph.vertices():
        for w in graph.neighbors(v):
            if w == v:
                raise GraphError(f"self-loop found on vertex {v!r}")
            if not graph.has_edge(w, v):
                raise GraphError(f"asymmetric adjacency between {v!r} and {w!r}")
            half_edges += 1
    if half_edges != 2 * graph.num_edges:
        raise GraphError(
            f"edge count mismatch: adjacency implies {half_edges // 2}, "
            f"cached value is {graph.num_edges}"
        )


def validate_orientation(graph: Graph, oriented: OrientedGraph) -> None:
    """Check that ``oriented`` is a consistent orientation of ``graph``.

    Every undirected edge must appear exactly once as a directed edge, and
    the orientation must be acyclic under the degree order.
    """
    directed: List = list(oriented.directed_edges())
    if len(directed) != graph.num_edges:
        raise GraphError(
            f"orientation has {len(directed)} arcs but the graph has {graph.num_edges} edges"
        )
    for u, v in directed:
        if not graph.has_edge(u, v):
            raise GraphError(f"orientation contains arc ({u!r}, {v!r}) missing from the graph")
    if not oriented.is_acyclic():
        raise GraphError("orientation is not acyclic under the degree order")
