"""Reading and writing graphs as plain-text edge lists.

The paper's datasets are distributed as SNAP edge lists (one ``u v`` pair per
line, ``#`` comment lines, arbitrary whitespace).  This module reads and
writes that format so that users with access to the original datasets can run
the benchmark harness on them unchanged, while the offline reproduction uses
the synthetic stand-ins from :mod:`repro.datasets`.
"""

from __future__ import annotations

import os
import tempfile
from typing import Callable, Iterable, Iterator, List, Optional, TextIO, Tuple, Union

from repro.errors import GraphFormatError
from repro.graph.graph import Graph, Vertex

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "parse_edge_lines",
    "relabel_to_integers",
]

PathOrFile = Union[str, "os.PathLike[str]", TextIO]


def parse_edge_lines(
    lines: Iterable[str],
    *,
    comment: str = "#",
    delimiter: Optional[str] = None,
    vertex_type: Callable[[str], Vertex] = int,
) -> Iterator[Tuple[Vertex, Vertex]]:
    """Parse an iterable of text lines into ``(u, v)`` edge pairs.

    Lines that are empty or start with the comment prefix are skipped.  A
    line with fewer than two fields, or a field the ``vertex_type`` converter
    rejects, raises :class:`GraphFormatError` carrying the 1-based line
    number.  Extra fields (e.g. timestamps or weights) are ignored.
    """
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(comment):
            continue
        fields = line.split(delimiter)
        if len(fields) < 2:
            raise GraphFormatError(
                f"expected at least two fields, got {len(fields)}", line_number
            )
        try:
            u = vertex_type(fields[0])
            v = vertex_type(fields[1])
        except (TypeError, ValueError) as exc:
            raise GraphFormatError(f"could not parse vertex label: {exc}", line_number) from exc
        yield (u, v)


def read_edge_list(
    source: PathOrFile,
    *,
    comment: str = "#",
    delimiter: Optional[str] = None,
    vertex_type: Callable[[str], Vertex] = int,
    skip_self_loops: bool = True,
) -> Graph:
    """Read an undirected graph from an edge-list file or open text handle.

    Duplicate edges are collapsed.  Self-loops are silently dropped by
    default (matching how SNAP social-network files are typically cleaned);
    set ``skip_self_loops=False`` to have them raise instead.
    """
    close_after = False
    if hasattr(source, "read"):
        handle = source  # type: ignore[assignment]
    else:
        handle = open(os.fspath(source), "r", encoding="utf-8")
        close_after = True
    try:
        graph = Graph()
        for u, v in parse_edge_lines(
            handle, comment=comment, delimiter=delimiter, vertex_type=vertex_type
        ):
            if u == v:
                if skip_self_loops:
                    continue
                raise GraphFormatError(f"self-loop on vertex {u!r}")
            graph.add_edge(u, v, exist_ok=True)
        return graph
    finally:
        if close_after:
            handle.close()


def write_edge_list(
    graph: Graph,
    destination: PathOrFile,
    *,
    header: Optional[str] = None,
) -> None:
    """Write ``graph`` as a plain edge list (one canonical edge per line).

    When ``destination`` is a path, the write is **crash-safe**: the lines
    go to a temporary file in the destination's directory, which is
    flushed, fsynced and atomically renamed over the target only once it
    is complete.  An interrupted export (crash, ``kill -9``, full disk)
    therefore either leaves the previous file untouched or publishes the
    whole new one — never a truncated dataset.  An open file handle is
    written through directly (the caller owns its lifecycle).

    Parameters
    ----------
    header:
        Optional comment text written as ``# <header>`` on the first line.
    """
    if hasattr(destination, "write"):
        _write_edge_lines(destination, graph, header)  # type: ignore[arg-type]
        return
    target = os.fspath(destination)
    directory = os.path.dirname(target) or "."
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{os.path.basename(target)}.", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            _write_edge_lines(handle, graph, header)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _write_edge_lines(handle: TextIO, graph: Graph, header: Optional[str]) -> None:
    if header is not None:
        handle.write(f"# {header}\n")
    handle.write(f"# vertices {graph.num_vertices} edges {graph.num_edges}\n")
    for u, v in graph.edges():
        handle.write(f"{u}\t{v}\n")


def relabel_to_integers(graph: Graph) -> Tuple[Graph, dict]:
    """Return a copy of ``graph`` with vertices relabelled ``0..n-1``.

    The mapping is deterministic (vertices are relabelled in sorted key
    order) so repeated calls produce identical graphs.  Returns the relabelled
    graph and the ``original -> integer`` mapping.
    """
    ordered: List[Vertex] = sorted(
        graph.vertices(), key=lambda v: (type(v).__name__, repr(v))
    )
    mapping = {v: i for i, v in enumerate(ordered)}
    relabelled = Graph(vertices=range(len(ordered)))
    for u, v in graph.edges():
        relabelled.add_edge(mapping[u], mapping[v], exist_ok=True)
    return relabelled, mapping
