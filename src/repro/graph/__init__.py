"""Graph substrate: data structures, orientation, triangles, I/O, generators.

This subpackage is the foundation every algorithm in the library builds on.
It provides

* :class:`~repro.graph.graph.Graph` — a mutable, undirected, simple graph
  backed by adjacency sets,
* :class:`~repro.graph.csr.CompactGraph` — an immutable CSR snapshot with
  dense int ids and sorted adjacency arrays, the fast backend for the
  top-k hot paths,
* :class:`~repro.graph.dynamic_csr.DynamicCompactGraph` — the mutable CSR
  overlay (base snapshot + per-vertex edge delta sets with a gated
  rebuild), the fast backend for the dynamic-maintenance hot path,
* :class:`~repro.graph.orientation.OrientedGraph` — the degree-ordered DAG
  ``G+`` used for once-per-triangle enumeration,
* triangle and wedge enumeration (:mod:`repro.graph.triangles`),
* degeneracy / arboricity estimation (:mod:`repro.graph.arboricity`),
* plain-text edge-list readers and writers (:mod:`repro.graph.io`), and
* seeded synthetic generators (:mod:`repro.graph.generators`).
"""

from repro.graph.graph import Graph
from repro.graph.csr import CompactGraph
from repro.graph.dynamic_csr import DynamicCompactGraph
from repro.graph.orientation import DegreeOrder, OrientedGraph, orient
from repro.graph.triangles import (
    count_triangles,
    enumerate_triangles,
    triangle_counts_per_vertex,
)
from repro.graph.arboricity import arboricity_upper_bound, degeneracy, degeneracy_ordering

__all__ = [
    "Graph",
    "CompactGraph",
    "DynamicCompactGraph",
    "DegreeOrder",
    "OrientedGraph",
    "orient",
    "enumerate_triangles",
    "count_triangles",
    "triangle_counts_per_vertex",
    "degeneracy",
    "degeneracy_ordering",
    "arboricity_upper_bound",
]
