"""Triangle and wedge enumeration on the oriented graph ``G+``.

The top-k search algorithms of the paper derive all shortest-path information
inside ego networks from triangles (an edge between two neighbours of ``p``)
and diamonds (two triangles sharing an edge — equivalently a non-adjacent
neighbour pair of ``p`` joined by a common neighbour).  This module provides
the once-per-triangle "forward" enumeration the paper's complexity analysis
(Theorem 2, ``O(α m)`` triangles touched) relies on, plus per-vertex and
per-edge triangle counts used by the analysis and benchmark modules.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.graph.graph import Graph, Vertex, normalize_edge
from repro.graph.orientation import OrientedGraph

__all__ = [
    "enumerate_triangles",
    "count_triangles",
    "triangle_counts_per_vertex",
    "triangle_counts_per_edge",
    "global_clustering_coefficient",
]

Triangle = Tuple[Vertex, Vertex, Vertex]


def enumerate_triangles(graph: Graph, oriented: OrientedGraph | None = None) -> Iterator[Triangle]:
    """Yield every triangle of ``graph`` exactly once.

    Triangles are produced as ``(u, v, w)`` where ``u`` precedes ``v`` and
    ``v`` precedes ``w`` in the degree order; the same triangle is never
    yielded twice.

    Parameters
    ----------
    graph:
        The undirected simple graph.
    oriented:
        An already-built :class:`OrientedGraph`; when omitted one is built
        internally.
    """
    plus = oriented if oriented is not None else OrientedGraph(graph)
    rank = plus.order.rank
    for u in plus.vertices():
        out_u = plus.out_neighbors(u)
        if len(out_u) < 2:
            continue
        for v in out_u:
            out_v = plus.out_neighbors(v)
            # Intersect the two out-neighbourhoods, iterating the smaller set.
            small, large = (out_u, out_v) if len(out_u) <= len(out_v) else (out_v, out_u)
            for w in small:
                if w in large and w != v and w != u:
                    # (u, v, w) with u -> v, u -> w, v -> w: emit once, from u.
                    if rank(v) < rank(w):
                        yield (u, v, w)


def count_triangles(graph: Graph) -> int:
    """Return the total number of triangles in ``graph``."""
    return sum(1 for _ in enumerate_triangles(graph))


def triangle_counts_per_vertex(graph: Graph) -> Dict[Vertex, int]:
    """Return, for every vertex, the number of triangles containing it.

    The per-vertex triangle count equals ``C̄p`` of the paper: the number of
    edges between ``p``'s neighbours (Lemma 1's first category).
    """
    counts: Dict[Vertex, int] = {v: 0 for v in graph.vertices()}
    for u, v, w in enumerate_triangles(graph):
        counts[u] += 1
        counts[v] += 1
        counts[w] += 1
    return counts


def triangle_counts_per_edge(graph: Graph) -> Dict[Tuple[Vertex, Vertex], int]:
    """Return, for every edge, the number of triangles containing it.

    The per-edge count is ``|N(u, v)|``, the number of common neighbours of
    the endpoints, and drives the edge-based parallel partitioning analysis.
    """
    counts: Dict[Tuple[Vertex, Vertex], int] = {
        normalize_edge(u, v): 0 for u, v in graph.edges()
    }
    for u, v, w in enumerate_triangles(graph):
        counts[normalize_edge(u, v)] += 1
        counts[normalize_edge(u, w)] += 1
        counts[normalize_edge(v, w)] += 1
    return counts


def global_clustering_coefficient(graph: Graph) -> float:
    """Return the global clustering coefficient ``3·#triangles / #wedges``.

    Used by the dataset-statistics experiment to characterise the synthetic
    stand-ins; returns 0.0 when the graph has no wedge.
    """
    wedges = 0
    for v in graph.vertices():
        d = graph.degree(v)
        wedges += d * (d - 1) // 2
    if wedges == 0:
        return 0.0
    return 3.0 * count_triangles(graph) / wedges
