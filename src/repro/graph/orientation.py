"""Degree-order orientation of an undirected graph (the DAG ``G+``).

Section II of the paper defines a total order ``≺`` on vertices (larger
degree first, larger identifier breaking ties) and orients every undirected
edge ``(u, v)`` from the lower-ranked to the higher-ranked endpoint so that
the resulting directed graph ``G+`` respects ``u ≺ v``.  Orienting the graph
this way guarantees that

* ``G+`` is acyclic, and
* every triangle of ``G`` has exactly one vertex with out-edges to the other
  two, so triangle enumeration driven by out-neighbourhood intersections
  touches each triangle exactly once (the classical "forward" algorithm whose
  running time is ``O(α m)`` with ``α`` the arboricity).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Set, Tuple

from repro._ordering import degree_rank, order_vertices
from repro.errors import VertexNotFoundError
from repro.graph.graph import Graph, Vertex

__all__ = ["DegreeOrder", "OrientedGraph", "orient"]


class DegreeOrder:
    """The paper's total order ``≺`` materialised for a fixed graph snapshot.

    The order is computed once from the degree map of the graph; it does not
    track later mutations (the dynamic algorithms of Section IV never need
    it to).
    """

    __slots__ = ("_rank", "_ordered")

    def __init__(self, graph: Graph) -> None:
        degrees = graph.degrees()
        self._ordered: List[Vertex] = order_vertices(degrees)
        self._rank: Dict[Vertex, int] = {v: i for i, v in enumerate(self._ordered)}

    def rank(self, vertex: Vertex) -> int:
        """Return the 0-based rank of ``vertex`` (0 = highest ranked)."""
        try:
            return self._rank[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def precedes(self, u: Vertex, v: Vertex) -> bool:
        """Return ``True`` iff ``u ≺ v``."""
        return self.rank(u) < self.rank(v)

    def ordered_vertices(self) -> List[Vertex]:
        """Return all vertices from highest to lowest rank."""
        return list(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._rank


class OrientedGraph:
    """The oriented DAG ``G+`` of an undirected graph under ``≺``.

    Each undirected edge ``(u, v)`` with ``u ≺ v`` becomes the directed edge
    ``u → v``?  The paper orients edges "to respect the total order u ≺ v",
    i.e. the edge points from the *higher-ranked* endpoint towards the
    lower-ranked endpoint is a matter of convention; what matters for
    correctness is that the orientation is consistent and acyclic.  We follow
    the standard forward-algorithm convention: the edge is directed from the
    lower-ranked endpoint to the higher-ranked endpoint **in rank value**,
    i.e. from the vertex that comes *earlier* in the total order to the one
    that comes later.  With that convention the out-degree of every vertex is
    bounded by ``O(√m)`` on real-world graphs and each triangle is discovered
    exactly once from its earliest vertex.
    """

    __slots__ = ("_order", "_out")

    def __init__(self, graph: Graph, order: DegreeOrder | None = None) -> None:
        self._order = order if order is not None else DegreeOrder(graph)
        self._out: Dict[Vertex, Set[Vertex]] = {v: set() for v in graph.vertices()}
        rank = self._order.rank
        for u, v in graph.edges():
            if rank(u) < rank(v):
                self._out[u].add(v)
            else:
                self._out[v].add(u)

    @property
    def order(self) -> DegreeOrder:
        """The :class:`DegreeOrder` the orientation was built from."""
        return self._order

    def out_neighbors(self, vertex: Vertex) -> Set[Vertex]:
        """Return ``N+(vertex)``, the out-neighbourhood in ``G+``."""
        try:
            return self._out[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def out_degree(self, vertex: Vertex) -> int:
        """Return ``|N+(vertex)|``."""
        return len(self.out_neighbors(vertex))

    def vertices(self) -> List[Vertex]:
        """Return all vertices."""
        return list(self._out)

    def directed_edges(self) -> Iterator[Tuple[Vertex, Vertex]]:
        """Iterate over every directed edge ``u → v`` of ``G+``."""
        for u, nbrs in self._out.items():
            for v in nbrs:
                yield (u, v)

    def max_out_degree(self) -> int:
        """Return the maximum out-degree (0 for an empty graph)."""
        if not self._out:
            return 0
        return max(len(nbrs) for nbrs in self._out.values())

    def is_acyclic(self) -> bool:
        """Verify (by rank monotonicity) that the orientation is a DAG.

        Every directed edge goes from a lower rank to a strictly higher rank,
        so acyclicity holds by construction; this method re-checks the
        invariant and is used by the validation utilities and tests.
        """
        rank = self._order.rank
        return all(rank(u) < rank(v) for u, v in self.directed_edges())

    def __len__(self) -> int:
        return len(self._out)


def orient(graph: Graph) -> OrientedGraph:
    """Convenience wrapper returning the oriented DAG ``G+`` of ``graph``."""
    return OrientedGraph(graph)
