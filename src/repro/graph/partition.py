"""Community-aware horizontal sharding of one CSR graph.

The serving plane scales tenant *count* (PR 5) and the kernels are
vectorized (PR 9), but a single huge graph is still one resident payload:
every sweep walks the whole vertex set on one CSR image.  This module
splits one graph into **shard payloads** that the runtime fans out across
and merges back bit-identically:

* :func:`partition_graph` assigns every vertex to exactly one shard —
  either contiguous id ranges (the baseline) or a deterministic,
  size-capped **label-propagation community partition** that groups
  neighbourhoods together.  Ego networks are 1-hop-local, so a partition
  that keeps communities intact minimises the vertices a shard must
  duplicate from its neighbours.
* Each shard materialises as a **halo-augmented**
  :class:`~repro.graph.csr.CompactGraph`: the shard's owned vertices plus
  their 1-hop boundary neighbours (the *halo*), with the adjacency induced
  on that member set.  Every owned vertex's ego network — its neighbours
  *and* the edges among them — is therefore complete inside the shard
  subgraph, which is what keeps shard-local scores **bit-identical** to
  the unsharded oracle: the per-vertex score depends only on the ego's
  pair/edge counts and the multiset of connector counts, all invariant to
  the local re-labelling.  Halo vertices exist only as context; their
  shard-local scores are wrong by construction and are never reported.
* The resulting :class:`ShardPlan` carries the vertex→shard map, the
  per-shard subgraphs keyed for the payload store as
  ``(graph_id, shard, version)``, cut-edge statistics, and an incremental
  :meth:`ShardPlan.refresh` that rebuilds **only the shards an edge
  update touched** (so a mutation re-ships one shard payload, not N).

Determinism: the label-propagation loop visits vertices in ascending id
order, breaks ties toward the smallest community id, caps community sizes
so one giant community cannot swallow the graph, and bin-packs the final
communities LPT-style with fixed tie-breaking — no randomness, no
wall-clock, so the same graph always yields the same plan.

Examples
--------
>>> from repro.graph.csr import CompactGraph
>>> cg = CompactGraph.from_edges([(0, 1), (1, 2), (3, 4)])
>>> plan = partition_graph(cg, 2, partitioner="range")
>>> [shard.owned_labels for shard in plan.shards]
[[0, 1, 2], [3, 4]]
>>> plan.cut_edges
0

Two triangles bridged by one edge: the community partitioner recovers the
triangles, so exactly the bridge is cut and each side duplicates one halo
vertex.

>>> bridged = CompactGraph.from_edges(
...     [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5), (2, 3)]
... )
>>> plan2 = partition_graph(bridged, 2, partitioner="community")
>>> (plan2.cut_edges, plan2.halo_vertices)
(1, 2)
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.errors import InvalidParameterError, VertexNotFoundError
from repro.graph.csr import CompactGraph

__all__ = [
    "PARTITIONERS",
    "Shard",
    "ShardPlan",
    "normalize_partitioner",
    "partition_graph",
]

#: The partitioner names a session negotiates between.  ``auto`` resolves
#: to ``community`` — the locality-aware cut is the whole point of
#: sharding an ego-network workload; ``range`` is the measurable baseline.
PARTITIONERS = ("auto", "range", "community")

#: Rounds of label propagation before the assignment is frozen.  The loop
#: almost always converges in 3–5 rounds; the bound only guards against
#: tie-rule oscillation on adversarial graphs.
_MAX_LP_ROUNDS = 10

#: Community size cap as a multiple of the ideal shard size.  Capping
#: stops label propagation from collapsing a well-connected graph into one
#: giant community (which would make balanced sharding impossible) while
#: leaving the bin-packer enough slack to keep real communities whole.
_COMMUNITY_CAP_SLACK = 1.2


def normalize_partitioner(partitioner: str) -> str:
    """Resolve a requested partitioner name (``auto`` → ``community``)."""
    name = partitioner.lower() if isinstance(partitioner, str) else partitioner
    if name not in PARTITIONERS:
        raise InvalidParameterError(
            f"unknown partitioner {partitioner!r}; accepted values are "
            "'auto' (resolves to 'community'), 'range' (contiguous id "
            "blocks) and 'community' (size-capped label propagation)"
        )
    return "community" if name == "auto" else name


@dataclass
class Shard:
    """One shard of a :class:`ShardPlan`.

    Attributes
    ----------
    index:
        The shard's position in the plan (also the ``shard`` component of
        its ``(graph_id, shard, version)`` payload key).
    version:
        Monotonic rebuild counter — bumped every time a refresh rebuilds
        this shard, so the payload store sees a new key exactly when the
        shard subgraph changed.
    owned_labels:
        Labels of the vertices this shard owns (scores are reported for
        these and only these), ascending by the parent's dense id at the
        last (re)build.
    graph:
        The halo-augmented induced subgraph.  Its labels are the *parent
        session's* labels (not dense ids), so routing survives snapshot
        re-compaction; its local adjacency preserves every owned vertex's
        exact ego network.
    owned_local:
        Dense local ids (into :attr:`graph`) of the owned vertices,
        ascending.
    member_labels:
        All member labels (owned + halo) as a set — the refresh path's
        touched-shard test.
    halo_count:
        Number of halo (non-owned member) vertices.
    """

    index: int
    version: int
    owned_labels: List[Hashable]
    graph: CompactGraph
    owned_local: List[int]
    member_labels: Set[Hashable]
    halo_count: int

    @property
    def num_owned(self) -> int:
        """Number of vertices this shard owns."""
        return len(self.owned_labels)

    @property
    def num_members(self) -> int:
        """Number of vertices materialised in the shard subgraph."""
        return self.graph.num_vertices


@dataclass
class ShardPlan:
    """A complete sharding of one graph (see :func:`partition_graph`).

    Attributes
    ----------
    partitioner:
        ``"range"`` or ``"community"`` (already resolved, never ``"auto"``).
    owner:
        The total vertex→shard map: every current vertex label appears in
        exactly one shard's owned set.
    shards:
        The halo-augmented :class:`Shard` subgraphs, in shard-index order.
    cut_edges / total_edges:
        Undirected edges whose endpoints live in different shards, and the
        graph total — the partition-quality signal (every cut edge is a
        vertex some shard must duplicate as halo).
    halo_vertices:
        Total halo duplications across shards (one vertex haloed into two
        shards counts twice — it is resident twice).
    num_vertices:
        Vertices of the parent graph at the last (re)build.
    """

    partitioner: str
    owner: Dict[Hashable, int]
    shards: List[Shard]
    cut_edges: int
    total_edges: int
    halo_vertices: int
    num_vertices: int
    rebuilds: int = field(default=0)

    @property
    def num_shards(self) -> int:
        """Number of shards in the plan."""
        return len(self.shards)

    @property
    def cut_edge_fraction(self) -> float:
        """Cut edges as a fraction of all edges (0.0 for an edgeless graph)."""
        return self.cut_edges / self.total_edges if self.total_edges else 0.0

    @property
    def halo_overhead(self) -> float:
        """Halo duplications as a fraction of the vertex count."""
        return self.halo_vertices / self.num_vertices if self.num_vertices else 0.0

    def shard_of(self, label: Hashable) -> int:
        """The shard index owning ``label`` (raises on unknown vertices)."""
        try:
            return self.owner[label]
        except KeyError:
            raise VertexNotFoundError(label) from None

    def payload_key(self, graph_id: str, shard: Shard) -> Tuple[str, int, int]:
        """The ``(graph_id, shard, version)`` store key of one shard."""
        return (graph_id, shard.index, shard.version)

    def summary(self) -> Dict[str, Any]:
        """A JSON-friendly description (stats/CLI payload shape)."""
        return {
            "shards": len(self.shards),
            "partitioner": self.partitioner,
            "num_vertices": self.num_vertices,
            "cut_edges": self.cut_edges,
            "total_edges": self.total_edges,
            "cut_edge_fraction": self.cut_edge_fraction,
            "halo_vertices": self.halo_vertices,
            "halo_overhead": self.halo_overhead,
            "rebuilds": self.rebuilds,
            "shard_sizes": [shard.num_owned for shard in self.shards],
            "shard_members": [shard.num_members for shard in self.shards],
            "shard_versions": [shard.version for shard in self.shards],
        }

    def refresh(
        self, compact: CompactGraph, touched_pairs: Sequence[Tuple[Hashable, Hashable]]
    ) -> List[int]:
        """Absorb applied edge updates; rebuild only the touched shards.

        ``compact`` is the parent graph's *current* snapshot and
        ``touched_pairs`` the ``(u, v)`` label pairs of every update applied
        since the plan was last (re)built, in order.  A shard must rebuild
        exactly when an update could have changed an owned vertex's ego
        network: an endpoint is owned by the shard (its neighbourhood —
        hence the member set — moved), or **both** endpoints are members
        (a halo–halo edge sits inside some owned ego).  An edge entirely
        outside a shard's member set cannot intersect any owned ego —
        every ego edge joins two members — so untouched shard subgraphs
        remain exact and keep their payload keys (and stay resident in the
        store).  New vertices are adopted by the other endpoint's shard
        (both-new pairs go to the smallest shard).  Returns the rebuilt
        shard indices; per-shard versions bump on rebuild.
        """
        touched: Set[int] = set()
        for u, v in touched_pairs:
            known_u, known_v = u in self.owner, v in self.owner
            if not known_u and not known_v:
                target = min(
                    range(len(self.shards)),
                    key=lambda s: (self.shards[s].num_owned, s),
                )
                self._adopt(u, target)
                self._adopt(v, target)
            elif not known_u:
                self._adopt(u, self.owner[v])
            elif not known_v:
                self._adopt(v, self.owner[u])
            touched.add(self.owner[u])
            touched.add(self.owner[v])
            for shard in self.shards:
                if shard.index in touched:
                    continue
                if u in shard.member_labels and v in shard.member_labels:
                    touched.add(shard.index)
        rebuilt = sorted(touched)
        for index in rebuilt:
            shard = self.shards[index]
            owned_ids = []
            kept_labels = []
            for label in shard.owned_labels:
                try:
                    owned_ids.append(compact.id_of(label))
                    kept_labels.append(label)
                except VertexNotFoundError:  # pragma: no cover - defensive
                    self.owner.pop(label, None)
            order = sorted(range(len(owned_ids)), key=owned_ids.__getitem__)
            self.shards[index] = _materialize_shard(
                compact,
                index,
                shard.version + 1,
                [owned_ids[i] for i in order],
            )
            self.rebuilds += 1
        if rebuilt:
            self._recount(compact)
        return rebuilt

    def _adopt(self, label: Hashable, shard_index: int) -> None:
        self.owner[label] = shard_index
        self.shards[shard_index].owned_labels.append(label)

    def _recount(self, compact: CompactGraph) -> None:
        """Recompute the cut/halo statistics against the current snapshot."""
        labels = compact.labels
        indptr, indices = compact.indptr, compact.indices
        cut = 0
        for u in range(compact.num_vertices):
            su = self.owner[labels[u]]
            for w in indices[indptr[u] : indptr[u + 1]]:
                if w > u and self.owner[labels[w]] != su:
                    cut += 1
        self.cut_edges = cut
        self.total_edges = compact.num_edges
        self.num_vertices = compact.num_vertices
        self.halo_vertices = sum(shard.halo_count for shard in self.shards)


def partition_graph(
    compact: CompactGraph, shards: int, partitioner: str = "auto"
) -> ShardPlan:
    """Partition ``compact`` into ``shards`` halo-augmented shard subgraphs.

    ``shards`` is clamped to the vertex count (an empty graph yields one
    empty shard); every shard of a non-empty graph owns at least one
    vertex.  ``partitioner`` is one of :data:`PARTITIONERS`.
    """
    if shards < 1:
        raise InvalidParameterError("shards must be a positive integer")
    partitioner = normalize_partitioner(partitioner)
    n = compact.num_vertices
    shards = max(1, min(shards, n)) if n else 1
    if partitioner == "range":
        assignment = _range_assignment(n, shards)
    else:
        assignment = _community_assignment(compact, shards)
    _fill_empty_shards(assignment, shards)

    labels = compact.labels
    owner = {labels[v]: assignment[v] for v in range(n)}
    owned_by_shard: List[List[int]] = [[] for _ in range(shards)]
    for v in range(n):  # ascending id order per shard, by construction
        owned_by_shard[assignment[v]].append(v)
    built = [
        _materialize_shard(compact, index, 0, owned)
        for index, owned in enumerate(owned_by_shard)
    ]
    indptr, indices = compact.indptr, compact.indices
    cut = 0
    for u in range(n):
        su = assignment[u]
        for w in indices[indptr[u] : indptr[u + 1]]:
            if w > u and assignment[w] != su:
                cut += 1
    return ShardPlan(
        partitioner=partitioner,
        owner=owner,
        shards=built,
        cut_edges=cut,
        total_edges=compact.num_edges,
        halo_vertices=sum(shard.halo_count for shard in built),
        num_vertices=n,
    )


def _range_assignment(n: int, shards: int) -> List[int]:
    """Contiguous, equally sized id blocks (the PR-4 scheduling baseline)."""
    assignment = [0] * n
    size, remainder = divmod(n, shards)
    start = 0
    for shard in range(shards):
        extent = size + (1 if shard < remainder else 0)
        for v in range(start, start + extent):
            assignment[v] = shard
        start += extent
    return assignment


def _community_assignment(compact: CompactGraph, shards: int) -> List[int]:
    """Deterministic size-capped label propagation + LPT bin-packing.

    Phase 1 grows communities: every vertex starts alone and repeatedly
    adopts the most frequent community among its neighbours (ascending id
    sweep; ties toward the smallest community id; a community at the size
    cap accepts no newcomers).  Phase 2 packs the converged communities
    onto shards largest-first, each onto the currently lightest shard —
    whole communities land on one shard, so intra-community edges are
    never cut.
    """
    n = compact.num_vertices
    indptr, indices = compact.indptr, compact.indices
    community = list(range(n))
    size = [1] * n
    cap = max(1, int(_COMMUNITY_CAP_SLACK * n / shards))
    for _ in range(_MAX_LP_ROUNDS):
        moved = 0
        for v in range(n):
            row = indices[indptr[v] : indptr[v + 1]]
            if not row:
                continue
            counts: Dict[int, int] = {}
            for w in row:
                c = community[w]
                counts[c] = counts.get(c, 0) + 1
            current = community[v]
            best, best_count = current, counts.get(current, 0)
            for c in sorted(counts):
                if c == current:
                    continue
                if size[c] + 1 > cap:
                    continue
                count = counts[c]
                if count > best_count or (count == best_count and c < best):
                    best, best_count = c, count
            if best != current:
                community[v] = best
                size[current] -= 1
                size[best] += 1
                moved += 1
        if not moved:
            break

    groups: Dict[int, List[int]] = {}
    for v in range(n):
        groups.setdefault(community[v], []).append(v)
    # Largest community first (ties: smallest member id), each onto the
    # lightest shard (ties: lowest index) — the LPT greedy of
    # repro.parallel.partition, specialised to whole communities.
    ordered = sorted(groups.values(), key=lambda g: (-len(g), g[0]))
    heap: List[Tuple[int, int]] = [(0, s) for s in range(shards)]
    heapq.heapify(heap)
    assignment = [0] * n
    for group in ordered:
        load, shard = heapq.heappop(heap)
        for v in group:
            assignment[v] = shard
        heapq.heappush(heap, (load + len(group), shard))
    return assignment


def _fill_empty_shards(assignment: List[int], shards: int) -> None:
    """Guarantee every shard owns a vertex (steal from the largest shard)."""
    if not assignment:
        return
    counts = [0] * shards
    for shard in assignment:
        counts[shard] += 1
    for shard in range(shards):
        while counts[shard] == 0:
            donor = max(range(shards), key=lambda s: (counts[s], -s))
            if counts[donor] <= 1:  # pragma: no cover - shards <= n holds
                break
            # Highest-id vertex of the donor: deterministic, and the last
            # block member is the least community-central choice.
            victim = max(v for v, s in enumerate(assignment) if s == donor)
            assignment[victim] = shard
            counts[donor] -= 1
            counts[shard] += 1


def _materialize_shard(
    compact: CompactGraph, index: int, version: int, owned_ids: Sequence[int]
) -> Shard:
    """Build one halo-augmented shard subgraph.

    ``owned_ids`` are parent dense ids in ascending order.  The member set
    is the owned set plus every neighbour of an owned vertex (the 1-hop
    halo); the subgraph is the adjacency induced on the members, labelled
    by the parent's labels.  Members are taken in ascending parent id, so
    the local re-labelling is monotonic and each CSR row stays sorted
    without re-sorting.
    """
    indptr, indices = compact.indptr, compact.indices
    labels = compact.labels
    member_set: Set[int] = set(owned_ids)
    for u in owned_ids:
        member_set.update(indices[indptr[u] : indptr[u + 1]])
    members = sorted(member_set)
    local = {g: i for i, g in enumerate(members)}
    local_labels = [labels[g] for g in members]
    sub_indptr: List[int] = [0]
    sub_indices: List[int] = []
    for g in members:
        for w in indices[indptr[g] : indptr[g + 1]]:
            if w in member_set:
                sub_indices.append(local[w])
        sub_indptr.append(len(sub_indices))
    graph = CompactGraph(local_labels, sub_indptr, sub_indices)
    owned_labels = [labels[g] for g in owned_ids]
    return Shard(
        index=index,
        version=version,
        owned_labels=owned_labels,
        graph=graph,
        owned_local=[local[g] for g in owned_ids],
        member_labels=set(local_labels),
        halo_count=len(members) - len(owned_ids),
    )
