"""Compact CSR (compressed-sparse-row) graph backend.

:class:`CompactGraph` is the read-only fast twin of the hash-set
:class:`~repro.graph.graph.Graph`.  Vertices are relabelled to dense
``0..n-1`` integers (insertion order of the source graph, with a stable
id ↔ label mapping) and the adjacency is stored as two flat arrays::

    indices[indptr[v] : indptr[v + 1]]   # sorted neighbour ids of v

plus a degree array and a cached degree-descending processing order that
matches the paper's total order ``≺`` exactly.  Everything the hot kernels
need — adjacency membership, sorted-merge / galloping intersection, ego
slicing — becomes integer arithmetic over contiguous ``array`` storage
instead of hashing arbitrary Python objects, which is what makes the
CSR top-k search several times faster than the hash-set oracle.

The class is deliberately immutable: the dynamic-maintenance algorithms of
Section IV keep operating on :class:`Graph`, and callers convert once up
front via :meth:`Graph.to_compact` / :meth:`CompactGraph.from_graph` before
entering a read-only hot path.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro._ordering import order_vertices, sort_key
from repro.errors import VertexNotFoundError
from repro.graph.graph import Edge, Graph, Vertex

__all__ = [
    "CompactGraph",
    "intersect_sorted",
    "intersect_size_sorted",
    "gallop_intersect_size",
    "DENSE_ADJACENCY_VERTEX_LIMIT",
]

#: Largest vertex count for which the O(n^2)-byte dense adjacency bitmap is
#: built (4096 -> at most 16 MiB).  Larger graphs use the neighbour-set
#: probe instead.
DENSE_ADJACENCY_VERTEX_LIMIT = 4096


def intersect_sorted(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Return the sorted intersection of two sorted int sequences (merge scan).

    Examples
    --------
    >>> intersect_sorted([1, 3, 5, 9], [2, 3, 4, 5])
    [3, 5]
    """
    out: List[int] = []
    i, j = 0, 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        x, y = a[i], b[j]
        if x == y:
            out.append(x)
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return out


def intersect_size_sorted(a: Sequence[int], b: Sequence[int]) -> int:
    """Return ``|a ∩ b|`` for two sorted int sequences via a linear merge.

    Examples
    --------
    >>> intersect_size_sorted([1, 3, 5, 9], [2, 3, 4, 5])
    2
    """
    count = 0
    i, j = 0, 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        x, y = a[i], b[j]
        if x == y:
            count += 1
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return count


def gallop_intersect_size(small: Sequence[int], large: Sequence[int]) -> int:
    """Return ``|small ∩ large|`` by galloping (binary) search into ``large``.

    Preferable to the linear merge when ``len(large) >> len(small)`` — the
    cost is ``O(|small| · log |large|)`` instead of ``O(|small| + |large|)``.

    Examples
    --------
    >>> gallop_intersect_size([3, 50], list(range(0, 100, 2)))
    1
    """
    count = 0
    lo = 0
    hi = len(large)
    for x in small:
        lo = bisect_left(large, x, lo, hi)
        if lo == hi:
            break
        if large[lo] == x:
            count += 1
            lo += 1
    return count


class CompactGraph:
    """Immutable CSR snapshot of an undirected simple graph.

    Parameters
    ----------
    labels:
        The original vertex labels; position = dense vertex id.
    indptr:
        Row-offset array of length ``n + 1``.
    indices:
        Concatenated, per-row sorted neighbour-id array of length ``2m``.

    Examples
    --------
    >>> g = Graph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
    >>> cg = CompactGraph.from_graph(g)
    >>> cg.num_vertices, cg.num_edges
    (3, 3)
    >>> cg.label_of(cg.id_of("b"))
    'b'
    >>> list(cg.neighbor_ids(cg.id_of("a"))) == sorted(
    ...     [cg.id_of("b"), cg.id_of("c")])
    True
    """

    __slots__ = (
        "_labels",
        "_ids",
        "indptr",
        "indices",
        "degrees",
        "_degree_order",
        "_bound_order",
        "_tie_keys",
        "_nbr_sets",
        "_dense_adj",
        "_dense_adj_built",
        "_ego_cache",
        "_ego_cache_cost",
    )

    def __init__(
        self, labels: Sequence[Vertex], indptr: Sequence[int], indices: Sequence[int]
    ) -> None:
        self._labels: List[Vertex] = list(labels)
        self._ids: Dict[Vertex, int] = {label: i for i, label in enumerate(self._labels)}
        # Plain lists index and slice measurably faster than typed arrays in
        # CPython, and the kernels are index/slice bound; arrays() rebuilds
        # the typed form when a compact pickle payload is needed.
        self.indptr: List[int] = list(indptr)
        self.indices: List[int] = list(indices)
        self.degrees: List[int] = [
            self.indptr[i + 1] - self.indptr[i] for i in range(len(self._labels))
        ]
        self._degree_order: Optional[List[int]] = None
        self._bound_order: Optional[List[int]] = None
        self._tie_keys: Optional[List[tuple]] = None
        self._nbr_sets: Optional[List[set]] = None
        self._dense_adj: Optional[bytearray] = None
        self._dense_adj_built = False
        # Per-vertex ego summaries memoised by the search kernels (see
        # repro.core.csr_kernels._ego_summary), plus the accumulated size
        # (in stored ints) used to budget the cache.  Safe because the
        # snapshot is immutable; dynamic updates go through Graph and
        # re-convert.
        self._ego_cache: Dict[int, tuple] = {}
        self._ego_cache_cost = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: Graph) -> "CompactGraph":
        """Build a CSR snapshot of ``graph`` (labels keep insertion order)."""
        labels = graph.vertices()
        ids = {label: i for i, label in enumerate(labels)}
        indptr = [0]
        indices: List[int] = []
        for label in labels:
            row = sorted(ids[w] for w in graph.neighbors(label))
            indices.extend(row)
            indptr.append(len(indices))
        return cls(labels, indptr, indices)

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Edge],
        vertices: Optional[Iterable[Vertex]] = None,
    ) -> "CompactGraph":
        """Build a CSR graph from an edge list (duplicates ignored)."""
        return cls.from_graph(Graph(edges=edges, vertices=vertices))

    def to_graph(self) -> Graph:
        """Materialise an equivalent mutable hash-set :class:`Graph`."""
        graph = Graph(vertices=self._labels)
        labels = self._labels
        indptr, indices = self.indptr, self.indices
        for u in range(len(labels)):
            for pos in range(indptr[u], indptr[u + 1]):
                v = indices[pos]
                if u < v:
                    graph.add_edge(labels[u], labels[v])
        return graph

    # ------------------------------------------------------------------
    # Size and label queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return len(self.indices) // 2

    def __len__(self) -> int:
        return len(self._labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompactGraph(n={self.num_vertices}, m={self.num_edges})"

    @property
    def labels(self) -> List[Vertex]:
        """The id → original-label table (do not mutate)."""
        return self._labels

    def id_of(self, vertex: Vertex) -> int:
        """Return the dense id of ``vertex``.

        Raises
        ------
        VertexNotFoundError
            If the vertex is not part of the snapshot.
        """
        try:
            return self._ids[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def label_of(self, vertex_id: int) -> Vertex:
        """Return the original label of dense id ``vertex_id``."""
        return self._labels[vertex_id]

    def has_vertex(self, vertex: Vertex) -> bool:
        """Return ``True`` when the original label ``vertex`` is present."""
        return vertex in self._ids

    # ------------------------------------------------------------------
    # Degree and adjacency queries (id based)
    # ------------------------------------------------------------------
    def degree(self, vertex_id: int) -> int:
        """Return ``d(vertex_id)``."""
        return self.degrees[vertex_id]

    def max_degree(self) -> int:
        """Return ``d_max`` (0 for the empty graph)."""
        return max(self.degrees, default=0)

    def degrees_by_label(self) -> Dict[Vertex, int]:
        """Return the ``label -> degree`` mapping (hash-``Graph`` shaped)."""
        degrees = self.degrees
        return {label: degrees[i] for i, label in enumerate(self._labels)}

    def neighbor_range(self, vertex_id: int) -> Tuple[int, int]:
        """Return the ``[start, end)`` slice of ``indices`` for a vertex."""
        return self.indptr[vertex_id], self.indptr[vertex_id + 1]

    def neighbor_ids(self, vertex_id: int) -> List[int]:
        """Return the sorted neighbour ids of ``vertex_id`` (a fresh list)."""
        start, end = self.neighbor_range(vertex_id)
        return self.indices[start:end]

    def has_edge_ids(self, u: int, v: int) -> bool:
        """Return ``True`` when the edge ``(u, v)`` exists (O(log min-degree)).

        The probe binary-searches the smaller adjacency row.
        """
        if self.degrees[u] > self.degrees[v]:
            u, v = v, u
        start, end = self.indptr[u], self.indptr[u + 1]
        pos = bisect_left(self.indices, v, start, end)
        return pos < end and self.indices[pos] == v

    def common_neighbor_count(self, u: int, v: int) -> int:
        """Return ``|N(u) ∩ N(v)|`` using merge or galloping intersection.

        The galloping variant is selected when the degree ratio is large
        enough that ``O(d_small · log d_large)`` beats the linear merge.
        """
        du, dv = self.degrees[u], self.degrees[v]
        if du > dv:
            u, v = v, u
            du, dv = dv, du
        a = self.neighbor_ids(u)
        b = self.neighbor_ids(v)
        if du == 0:
            return 0
        if dv > 8 * du:
            return gallop_intersect_size(a, b)
        return intersect_size_sorted(a, b)

    # ------------------------------------------------------------------
    # Orderings and worker payloads
    # ------------------------------------------------------------------
    def degree_order(self) -> List[int]:
        """Return vertex ids in the paper's total order ``≺`` (cached).

        The order is non-increasing degree with ties broken by the original
        labels, exactly as :func:`repro._ordering.order_vertices` produces for
        the hash backend — both backends therefore process vertices in the
        identical sequence, which is what makes their search statistics
        comparable entry for entry.
        """
        if self._degree_order is None:
            degrees = self.degrees_by_label()
            ids = self._ids
            self._degree_order = [ids[label] for label in order_vertices(degrees)]
        return self._degree_order

    def bound_order(self) -> List[int]:
        """Return vertex ids sorted by non-increasing static bound (cached).

        Ties are broken by ascending label sort key — the exact pop order of
        OptBSearch's max-heap over the initial static bounds.  (Sorting by
        the bound, not the degree: degrees 0 and 1 share the bound 0.0, so
        they tie with each other in the heap.)  Having this precomputed lets
        the CSR search stream static candidates lazily and only heap-manage
        the few re-pushed vertices.
        """
        if self._bound_order is None:
            degrees = self.degrees
            ties = self.tie_keys()
            self._bound_order = sorted(
                range(len(degrees)),
                key=lambda v: (-(degrees[v] * (degrees[v] - 1) / 2.0), ties[v]),
            )
        return self._bound_order

    def neighbor_sets(self) -> List[set]:
        """Return the per-vertex neighbour-id sets (lazily built, cached).

        A derived acceleration structure over the CSR arrays: the wedge
        kernels restrict each neighbour's adjacency to an ego via one
        C-level ``set.intersection`` and probe adjacency via ``in`` against
        these sets, which beats any per-element Python loop.  Costs
        ``O(n + 2m)`` extra memory; built on first use only.
        """
        if self._nbr_sets is None:
            indptr, indices = self.indptr, self.indices
            self._nbr_sets = [
                set(indices[indptr[i] : indptr[i + 1]]) for i in range(len(self._labels))
            ]
        return self._nbr_sets

    def dense_adjacency(self) -> Optional[bytearray]:
        """Return the flat ``n × n`` adjacency bitmap, or ``None`` if too big.

        Built lazily (and cached) only when
        ``n <= DENSE_ADJACENCY_VERTEX_LIMIT``: ``dense[u * n + v]`` is 1 iff
        the edge ``(u, v)`` exists.  The wedge kernels exploit that their
        packed pair key ``x * n + y`` is exactly this probe index, turning
        the adjacency test into a single byte load.
        """
        if not self._dense_adj_built:
            self._dense_adj_built = True
            # One bitmap builder for parent snapshots and parallel workers
            # alike (imported lazily: csr_kernels imports this module).
            from repro.core.csr_kernels import build_dense_adjacency

            self._dense_adj = build_dense_adjacency(self.indptr, self.indices)
        return self._dense_adj

    def arrays(self) -> Tuple[array, array]:
        """Return ``(indptr, indices)`` — the cheap picklable worker payload.

        Parallel workers receive these two flat typed arrays instead of a
        rebuilt adjacency dictionary, which shrinks both pickling time and
        payload size (two ``array('l')`` buffers versus ``n`` Python sets).
        """
        return array("l", self.indptr), array("l", self.indices)

    def tie_keys(self) -> List[tuple]:
        """Return the per-id deterministic sort keys of the labels (cached).

        These are the heap tie-breakers of OptBSearch; they match
        :func:`repro._ordering.sort_key` on the original labels so the CSR
        search pops bound-tied vertices in the same order as the hash
        search.
        """
        if self._tie_keys is None:
            self._tie_keys = [sort_key(label) for label in self._labels]
        return self._tie_keys
