"""A mutable, undirected, simple graph backed by adjacency sets.

The :class:`Graph` class is intentionally small and dependency-free: it is the
substrate every algorithm in the reproduction builds on, so its operations are
kept to the set the paper actually needs (neighbour queries, degree queries,
edge membership, induced subgraphs and ego networks) plus the mutation
operations required by the dynamic maintenance algorithms of Section IV
(edge insertion and deletion).

Vertices may be any hashable object.  Edges are unordered pairs of distinct
vertices; self-loops and parallel edges are rejected, matching the simple
graph model of the paper.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import (
    EdgeExistsError,
    EdgeNotFoundError,
    SelfLoopError,
    VertexNotFoundError,
)

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

__all__ = ["Graph", "Vertex", "Edge", "normalize_edge"]


def normalize_edge(u: Vertex, v: Vertex) -> Tuple[Vertex, Vertex]:
    """Return a canonical representation of the undirected edge ``{u, v}``.

    The canonical form orders the endpoints deterministically (by type name
    and ``repr``), so that ``normalize_edge(u, v) == normalize_edge(v, u)``
    for every pair of distinct vertices.
    """
    ku = (type(u).__name__, repr(u))
    kv = (type(v).__name__, repr(v))
    return (u, v) if ku <= kv else (v, u)


class Graph:
    """Undirected simple graph stored as adjacency sets.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v)`` pairs used to initialise the graph.
    vertices:
        Optional iterable of vertices to add (isolated vertices are allowed
        and participate in top-k searches with ego-betweenness 0).

    Examples
    --------
    >>> g = Graph(edges=[(1, 2), (2, 3), (1, 3)])
    >>> g.degree(2)
    2
    >>> sorted(g.neighbors(1))
    [2, 3]
    >>> g.has_edge(3, 1)
    True
    """

    __slots__ = ("_adj", "_num_edges", "_version", "_compact_cache")

    def __init__(
        self,
        edges: Optional[Iterable[Edge]] = None,
        vertices: Optional[Iterable[Vertex]] = None,
    ) -> None:
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        self._num_edges: int = 0
        self._version: int = 0
        self._compact_cache: Optional[Tuple[int, "CompactGraph"]] = None
        if vertices is not None:
            for v in vertices:
                self.add_vertex(v)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v, exist_ok=True)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[Edge]) -> "Graph":
        """Build a graph from an iterable of edges, ignoring duplicates."""
        return cls(edges=edges)

    @classmethod
    def from_adjacency(cls, adjacency: Dict[Vertex, Set[Vertex]]) -> "Graph":
        """Build a graph from an adjacency mapping ``vertex -> neighbour set``.

        The mapping is validated to be symmetric and self-loop free.  Used by
        the parallel workers, which receive plain dictionaries rather than
        :class:`Graph` instances.
        """
        graph = cls(vertices=adjacency)
        for u, nbrs in adjacency.items():
            for v in nbrs:
                if u == v:
                    raise SelfLoopError(u)
                if not graph.has_edge(u, v):
                    graph.add_edge(u, v)
        return graph

    def to_adjacency(self) -> Dict[Vertex, Set[Vertex]]:
        """Return a deep copy of the adjacency mapping."""
        return {v: set(nbrs) for v, nbrs in self._adj.items()}

    def copy(self) -> "Graph":
        """Return an independent deep copy of the graph."""
        clone = Graph()
        clone._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        clone._num_edges = self._num_edges
        return clone

    @property
    def version(self) -> int:
        """Monotone counter bumped by every mutation (cache-keying aid)."""
        return self._version

    def to_compact(self) -> "CompactGraph":
        """Return an immutable :class:`~repro.graph.csr.CompactGraph` snapshot.

        Vertices are relabelled to dense ``0..n-1`` integers (in insertion
        order) and the adjacency is stored as sorted CSR arrays — the fast
        backend for the top-k hot paths.  The original labels are preserved
        and every result-producing API maps ids back to them.

        The snapshot is memoised per :attr:`version`: as long as the graph
        is not mutated, repeated calls return the *same* ``CompactGraph``
        object, so every caller — the top-k searches, the parallel engines,
        an :class:`~repro.session.EgoSession` — shares its cached search
        orders and memoised ego summaries.  Any mutation releases the memo
        immediately (no stale snapshot is held) and the next call converts
        afresh; :meth:`clear_caches` drops it on demand when the memory of
        an idle graph's snapshot matters.
        """
        from repro.graph.csr import CompactGraph

        cached = self._compact_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        compact = CompactGraph.from_graph(self)
        self._compact_cache = (self._version, compact)
        return compact

    def clear_caches(self) -> None:
        """Release the memoised :meth:`to_compact` snapshot (and its ego
        caches).  Purely a memory knob — the next conversion rebuilds it."""
        self._compact_cache = None

    # ------------------------------------------------------------------
    # Size queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of edges ``m``."""
        return self._num_edges

    def __len__(self) -> int:
        return len(self._adj)

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._adj

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    # ------------------------------------------------------------------
    # Vertex operations
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: Vertex) -> None:
        """Add ``vertex`` to the graph (no-op when it already exists)."""
        if vertex not in self._adj:
            self._adj[vertex] = set()
            self._version += 1
            self._compact_cache = None

    def remove_vertex(self, vertex: Vertex) -> None:
        """Remove ``vertex`` and every incident edge.

        Raises
        ------
        VertexNotFoundError
            If the vertex is not present.
        """
        if vertex not in self._adj:
            raise VertexNotFoundError(vertex)
        neighbors = self._adj.pop(vertex)
        for nbr in neighbors:
            self._adj[nbr].discard(vertex)
        self._num_edges -= len(neighbors)
        self._version += 1
        self._compact_cache = None

    def has_vertex(self, vertex: Vertex) -> bool:
        """Return ``True`` when ``vertex`` is in the graph."""
        return vertex in self._adj

    def vertices(self) -> List[Vertex]:
        """Return a list of all vertices (insertion order)."""
        return list(self._adj)

    # ------------------------------------------------------------------
    # Edge operations
    # ------------------------------------------------------------------
    def add_edge(self, u: Vertex, v: Vertex, exist_ok: bool = False) -> None:
        """Insert the undirected edge ``(u, v)``.

        Missing endpoints are added automatically.

        Parameters
        ----------
        exist_ok:
            When ``True`` a duplicate insertion is silently ignored; when
            ``False`` (the default) it raises :class:`EdgeExistsError`.

        Raises
        ------
        SelfLoopError
            If ``u == v``.
        EdgeExistsError
            If the edge already exists and ``exist_ok`` is ``False``.
        """
        if u == v:
            raise SelfLoopError(u)
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._adj[u]:
            if exist_ok:
                return
            raise EdgeExistsError(u, v)
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._num_edges += 1
        self._version += 1
        self._compact_cache = None

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the undirected edge ``(u, v)``.

        Raises
        ------
        EdgeNotFoundError
            If the edge is not present.
        """
        if u not in self._adj or v not in self._adj or v not in self._adj[u]:
            raise EdgeNotFoundError(u, v)
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1
        self._version += 1
        self._compact_cache = None

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return ``True`` when the undirected edge ``(u, v)`` exists."""
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def edges(self) -> Iterator[Edge]:
        """Iterate over every edge exactly once as a canonical pair."""
        seen: Set[FrozenSet[Vertex]] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    yield normalize_edge(u, v)

    def edge_list(self) -> List[Edge]:
        """Return every edge as a list of canonical pairs."""
        return list(self.edges())

    # ------------------------------------------------------------------
    # Neighbourhood queries
    # ------------------------------------------------------------------
    def neighbors(self, vertex: Vertex) -> Set[Vertex]:
        """Return the neighbour set ``N(vertex)`` (a live set — do not mutate).

        Raises
        ------
        VertexNotFoundError
            If the vertex is not present.
        """
        try:
            return self._adj[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def degree(self, vertex: Vertex) -> int:
        """Return ``d(vertex) = |N(vertex)|``."""
        return len(self.neighbors(vertex))

    def degrees(self) -> Dict[Vertex, int]:
        """Return a mapping from every vertex to its degree."""
        return {v: len(nbrs) for v, nbrs in self._adj.items()}

    def max_degree(self) -> int:
        """Return ``d_max``, the maximum degree (0 for an empty graph)."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def common_neighbors(self, u: Vertex, v: Vertex) -> Set[Vertex]:
        """Return ``N(u) ∩ N(v)``, the neighbours of the edge/pair ``(u, v)``."""
        nu, nv = self.neighbors(u), self.neighbors(v)
        if len(nu) > len(nv):
            nu, nv = nv, nu
        return {w for w in nu if w in nv}

    # ------------------------------------------------------------------
    # Subgraphs
    # ------------------------------------------------------------------
    def subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """Return the subgraph induced by ``vertices``.

        Vertices not present in the graph are ignored; isolated members of
        ``vertices`` are preserved as isolated vertices of the result.
        """
        selected = {v for v in vertices if v in self._adj}
        sub = Graph(vertices=selected)
        if all(type(v) is int for v in selected):
            # Dense-int fast path: every undirected edge is visited from both
            # endpoints, so emitting it only from the smaller one inserts each
            # edge exactly once without re-probing `sub`.  The membership
            # check must come first — a selected int vertex may have
            # non-int neighbours that do not support `<`.
            for v in selected:
                for w in self._adj[v]:
                    if w in selected and v < w:
                        sub.add_edge(v, w)
        else:
            for v in selected:
                for w in self._adj[v]:
                    if w in selected:
                        sub.add_edge(v, w, exist_ok=True)
        return sub

    def ego_network(self, vertex: Vertex) -> "Graph":
        """Return the ego network ``GE(vertex)`` (Definition 1 of the paper).

        The ego network is the subgraph induced by ``N(vertex) ∪ {vertex}``.
        """
        nbrs = self.neighbors(vertex)
        return self.subgraph(set(nbrs) | {vertex})

    # ------------------------------------------------------------------
    # Whole-graph statistics helpers
    # ------------------------------------------------------------------
    def degree_sequence(self) -> List[int]:
        """Return the sorted (non-increasing) degree sequence."""
        return sorted((len(nbrs) for nbrs in self._adj.values()), reverse=True)

    def density(self) -> float:
        """Return the edge density ``2m / (n (n-1))`` (0 for n < 2)."""
        n = self.num_vertices
        if n < 2:
            return 0.0
        return 2.0 * self.num_edges / (n * (n - 1))

    def connected_components(self) -> List[Set[Vertex]]:
        """Return the connected components as a list of vertex sets."""
        seen: Set[Vertex] = set()
        components: List[Set[Vertex]] = []
        for start in self._adj:
            if start in seen:
                continue
            component: Set[Vertex] = set()
            stack = [start]
            seen.add(start)
            while stack:
                v = stack.pop()
                component.add(v)
                for w in self._adj[v]:
                    if w not in seen:
                        seen.add(w)
                        stack.append(w)
            components.append(component)
        return components
