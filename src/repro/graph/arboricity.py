"""Degeneracy ordering and arboricity estimation.

Theorem 2 of the paper bounds the running time of both search algorithms by
``O(α m d_max)`` where ``α`` is the arboricity of the graph.  Computing the
exact arboricity is a matroid-union problem; like the paper (which cites the
Chiba–Nishizeki and Nash-Williams results) we only need cheap, reliable
bounds:

* the *degeneracy* ``δ*`` of the graph, computed exactly by the classical
  peeling algorithm, satisfies ``α ≤ δ* ≤ 2α − 1``, and
* the Chiba–Nishizeki bound ``α ≤ ⌈√m⌉`` (for connected graphs with m ≥ 1).

Both are exposed so the analysis and benchmark modules can report them for
every dataset.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.graph.graph import Graph, Vertex

__all__ = ["degeneracy", "degeneracy_ordering", "arboricity_upper_bound", "arboricity_lower_bound"]


def degeneracy_ordering(graph: Graph) -> Tuple[List[Vertex], int]:
    """Return a degeneracy (smallest-last) ordering and the degeneracy value.

    The ordering repeatedly removes a vertex of minimum remaining degree; the
    degeneracy is the largest degree observed at removal time.  Runs in
    ``O(n + m)`` using bucketed degrees.
    """
    degrees: Dict[Vertex, int] = graph.degrees()
    if not degrees:
        return [], 0

    max_deg = max(degrees.values())
    buckets: List[set] = [set() for _ in range(max_deg + 1)]
    for v, d in degrees.items():
        buckets[d].add(v)

    remaining = dict(degrees)
    adjacency = {v: set(graph.neighbors(v)) for v in graph.vertices()}
    removed: set = set()
    ordering: List[Vertex] = []
    degeneracy_value = 0
    pointer = 0

    for _ in range(len(degrees)):
        # Find the lowest non-empty bucket; the pointer only needs to back up
        # by one per removal because a removal lowers degrees by at most one.
        while pointer <= max_deg and not buckets[pointer]:
            pointer += 1
        v = buckets[pointer].pop()
        degeneracy_value = max(degeneracy_value, pointer)
        ordering.append(v)
        removed.add(v)
        for w in adjacency[v]:
            if w in removed:
                continue
            d_old = remaining[w]
            buckets[d_old].discard(w)
            remaining[w] = d_old - 1
            buckets[d_old - 1].add(w)
        pointer = max(pointer - 1, 0)

    return ordering, degeneracy_value


def degeneracy(graph: Graph) -> int:
    """Return the degeneracy ``δ*`` of the graph."""
    _, value = degeneracy_ordering(graph)
    return value


def arboricity_upper_bound(graph: Graph) -> int:
    """Return an upper bound on the arboricity ``α``.

    The bound is ``min(degeneracy, ⌈√m⌉)`` (both are classical upper bounds;
    for the empty graph the bound is 0).
    """
    m = graph.num_edges
    if m == 0:
        return 0
    return min(degeneracy(graph), math.isqrt(m - 1) + 1)


def arboricity_lower_bound(graph: Graph) -> int:
    """Return the Nash-Williams density lower bound on the arboricity.

    ``α ≥ ⌈m_S / (n_S − 1)⌉`` for every subgraph ``S``; evaluating it on the
    whole graph gives a cheap, always-valid lower bound.
    """
    n, m = graph.num_vertices, graph.num_edges
    if n < 2 or m == 0:
        return 0
    return -(-m // (n - 1))
