"""Delta-capable CSR overlay for the dynamic-maintenance hot path.

:class:`DynamicCompactGraph` is the mutable twin of the immutable
:class:`~repro.graph.csr.CompactGraph`: it keeps the base CSR snapshot
(``indptr`` / ``indices``) untouched and layers small per-vertex *delta
sets* of inserted and deleted edges on top, so that

* adjacency and intersection queries run on live per-vertex **int sets**
  (C-level ``set`` operations over dense ids — no hashing of arbitrary
  vertex labels),
* rows that no update has touched are still served as contiguous array
  slices straight from the base snapshot,
* once the accumulated deltas grow past a size/ratio gate the overlay
  :meth:`rebuild`\\ s itself into a fresh CSR snapshot, which re-compacts
  every row back to array form and resets the delta tracking.

Vertex ids are dense ``0..n-1`` ints and — crucially for the incremental
kernels — **stable across rebuilds**: new vertices are appended, existing
ids never move, so memoised per-vertex results survive a rebuild (a rebuild
changes the storage layout, never the graph).

The overlay also hosts the memoised per-vertex ego-betweenness scores used
by the incremental maintenance kernels
(:func:`repro.core.csr_kernels.dynamic_ego_score`): an edge update
``(u, v)`` invalidates exactly the entries of ``{u, v} ∪ N(u) ∩ N(v)``
(Observation 1 of the paper) and leaves every other memoised score valid.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro._ordering import sort_key
from repro.errors import (
    EdgeExistsError,
    EdgeNotFoundError,
    SelfLoopError,
    VertexNotFoundError,
)
from repro.graph.csr import CompactGraph
from repro.graph.graph import Graph, Vertex

__all__ = [
    "DynamicCompactGraph",
    "DEFAULT_REBUILD_RATIO",
    "DEFAULT_MIN_REBUILD_DELTAS",
]

#: Default fraction of the base edge count the accumulated deltas may reach
#: before the overlay re-compacts itself into a fresh CSR snapshot.
DEFAULT_REBUILD_RATIO = 0.25

#: Default floor on the delta count before a rebuild is considered at all —
#: on small graphs the ratio gate alone would trigger a rebuild every few
#: updates, which costs more than it saves.
DEFAULT_MIN_REBUILD_DELTAS = 256


class DynamicCompactGraph:
    """A mutable CSR overlay: base snapshot + per-vertex edge delta sets.

    Parameters
    ----------
    base:
        The immutable CSR snapshot the overlay starts from.  The snapshot is
        never mutated; its per-row neighbour sets are copied once so the
        overlay owns its working adjacency.
    rebuild_ratio:
        Rebuild once the delta count exceeds this fraction of the base edge
        count (subject to ``min_rebuild_deltas``).
    min_rebuild_deltas:
        Never rebuild before this many deltas have accumulated.
    auto_rebuild:
        When ``False`` the gate is disabled and :meth:`rebuild` must be
        called explicitly.

    Examples
    --------
    >>> g = Graph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
    >>> dyn = DynamicCompactGraph.from_graph(g)
    >>> sorted(dyn.insert_edge("c", "d"))
    ['c', 'd']
    >>> dyn.num_edges, dyn.delta_records
    (4, 1)
    >>> dyn.to_graph() == Graph(edges=[("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
    True
    >>> dyn.rebuild()
    >>> dyn.delta_records
    0
    """

    __slots__ = (
        "_base",
        "_base_n",
        "_labels",
        "_ids",
        "_sort_keys",
        "_degrees",
        "_nbr_sets",
        "_added",
        "_removed",
        "_delta_records",
        "_num_edges",
        "_score_cache",
        "_summaries",
        "_summary_cost",
        "maintain_summaries",
        "_version",
        "rebuild_ratio",
        "min_rebuild_deltas",
        "auto_rebuild",
        "rebuilds",
    )

    def __init__(
        self,
        base: CompactGraph,
        rebuild_ratio: float = DEFAULT_REBUILD_RATIO,
        min_rebuild_deltas: int = DEFAULT_MIN_REBUILD_DELTAS,
        auto_rebuild: bool = True,
        maintain_summaries: bool = False,
    ) -> None:
        self._base = base
        self._base_n = base.num_vertices
        self._labels: List[Vertex] = list(base.labels)
        self._ids: Dict[Vertex, int] = {label: i for i, label in enumerate(self._labels)}
        self._sort_keys: List[tuple] = list(base.tie_keys())
        self._degrees: List[int] = list(base.degrees)
        indptr, indices = base.indptr, base.indices
        # Fresh mutable copies — never alias the snapshot's cached sets.
        self._nbr_sets: List[Set[int]] = [
            set(indices[indptr[i] : indptr[i + 1]]) for i in range(self._base_n)
        ]
        self._added: Dict[int, Set[int]] = {}
        self._removed: Dict[int, Set[int]] = {}
        self._delta_records = 0
        self._num_edges = base.num_edges
        # Memoised exact ego-betweenness per id, maintained by
        # repro.core.csr_kernels.dynamic_ego_score; updates invalidate only
        # the affected entries and a rebuild keeps the cache (the graph is
        # unchanged, only its storage is).
        self._score_cache: Dict[int, float] = {}
        # Memoised ego summaries: id -> (edges_in_ego, linker) where
        # ``linker`` maps the sorted pair ``(x, y)`` of non-adjacent
        # neighbours to its in-ego connector count.  All-integer state:
        # every edge update patches the affected entries exactly (see
        # _patch_summaries), so the canonical float score re-derived from a
        # patched summary is bit-identical to a fresh enumeration.  Entries
        # are created by dynamic_ego_score when ``maintain_summaries`` is
        # set (the lazy maintainer's mode); patching always honours
        # whatever entries exist.
        self._summaries: Dict[int, Tuple[int, Dict[Tuple[int, int], int]]] = {}
        self._summary_cost = 0
        self.maintain_summaries = maintain_summaries
        self._version = 0
        self.rebuild_ratio = rebuild_ratio
        self.min_rebuild_deltas = min_rebuild_deltas
        self.auto_rebuild = auto_rebuild
        self.rebuilds = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: Graph, **kwargs) -> "DynamicCompactGraph":
        """Build an overlay from a hash-set :class:`Graph` (one conversion)."""
        return cls(CompactGraph.from_graph(graph), **kwargs)

    def to_graph(self) -> Graph:
        """Materialise the *current* state as a hash-set :class:`Graph`."""
        labels = self._labels
        graph = Graph(vertices=labels)
        for u, nbrs in enumerate(self._nbr_sets):
            lu = labels[u]
            for v in nbrs:
                if u < v:
                    graph.add_edge(lu, labels[v])
        return graph

    def snapshot(self) -> CompactGraph:
        """Return an immutable CSR snapshot of the current state.

        When no deltas have accumulated this is the base snapshot itself
        (free); otherwise fresh CSR arrays are compacted from the live
        neighbour sets.  Ids and labels are preserved either way, so results
        computed against the snapshot map 1:1 onto the overlay.
        """
        if self._delta_records == 0 and len(self._labels) == self._base_n:
            return self._base
        indptr = [0]
        indices: List[int] = []
        for nbrs in self._nbr_sets:
            indices.extend(sorted(nbrs))
            indptr.append(len(indices))
        return CompactGraph(self._labels, indptr, indices)

    def rebuild(self) -> None:
        """Re-compact the overlay into a fresh base CSR snapshot.

        The graph itself is unchanged — only the storage layout: every row
        becomes a contiguous sorted array slice again, the delta sets are
        cleared and the memoised ego scores survive.
        """
        self._base = self.snapshot()
        self._base_n = len(self._labels)
        self._added = {}
        self._removed = {}
        self._delta_records = 0
        self.rebuilds += 1

    def _maybe_rebuild(self) -> None:
        if not self.auto_rebuild:
            return
        threshold = max(
            self.min_rebuild_deltas,
            int(self.rebuild_ratio * max(self._base.num_edges, 1)),
        )
        if self._delta_records >= threshold:
            self.rebuild()

    # ------------------------------------------------------------------
    # Size / label queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m`` (base ± deltas)."""
        return self._num_edges

    @property
    def delta_records(self) -> int:
        """Number of edges on which the overlay diverges from its base."""
        return self._delta_records

    @property
    def version(self) -> int:
        """Monotone counter bumped by every mutation (cache-keying aid)."""
        return self._version

    @property
    def base(self) -> CompactGraph:
        """The current immutable base snapshot (pre-delta state)."""
        return self._base

    @property
    def labels(self) -> List[Vertex]:
        """The id → original-label table (do not mutate)."""
        return self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynamicCompactGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"deltas={self._delta_records})"
        )

    def id_of(self, vertex: Vertex) -> int:
        """Return the dense id of ``vertex`` (raises if absent)."""
        try:
            return self._ids[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def label_of(self, vertex_id: int) -> Vertex:
        """Return the original label of dense id ``vertex_id``."""
        return self._labels[vertex_id]

    def has_vertex(self, vertex: Vertex) -> bool:
        """Return ``True`` when the label ``vertex`` is present."""
        return vertex in self._ids

    def sort_keys(self) -> List[tuple]:
        """Per-id deterministic label sort keys (canonical tie-breaking)."""
        return self._sort_keys

    # ------------------------------------------------------------------
    # Adjacency queries (id based)
    # ------------------------------------------------------------------
    def degree(self, vertex_id: int) -> int:
        """Return ``d(vertex_id)``."""
        return self._degrees[vertex_id]

    def degrees_by_label(self) -> Dict[Vertex, int]:
        """Return the ``label -> degree`` mapping."""
        degrees = self._degrees
        return {label: degrees[i] for i, label in enumerate(self._labels)}

    def neighbor_set(self, vertex_id: int) -> Set[int]:
        """Return the live neighbour-id set of ``vertex_id`` (do not mutate)."""
        return self._nbr_sets[vertex_id]

    def neighbor_sets(self) -> List[Set[int]]:
        """Return the per-vertex neighbour-id sets (live — do not mutate)."""
        return self._nbr_sets

    def neighbor_ids(self, vertex_id: int) -> List[int]:
        """Return the sorted neighbour ids of ``vertex_id``.

        Rows untouched since the last rebuild come straight from the base
        CSR arrays (an array slice); dirty rows are sorted from the live
        set.
        """
        if (
            vertex_id < self._base_n
            and not self._added.get(vertex_id)
            and not self._removed.get(vertex_id)
        ):
            start, end = self._base.neighbor_range(vertex_id)
            return self._base.indices[start:end]
        return sorted(self._nbr_sets[vertex_id])

    def has_edge_ids(self, u: int, v: int) -> bool:
        """Return ``True`` when the edge ``(u, v)`` currently exists."""
        return v in self._nbr_sets[u]

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Label-level edge query (``False`` when either label is absent)."""
        iu = self._ids.get(u)
        iv = self._ids.get(v)
        if iu is None or iv is None:
            return False
        return iv in self._nbr_sets[iu]

    def common_neighbor_ids(self, u: int, v: int) -> Set[int]:
        """Return ``N(u) ∩ N(v)`` as a set of ids (one C-level intersection)."""
        a, b = self._nbr_sets[u], self._nbr_sets[v]
        if len(a) > len(b):
            a, b = b, a
        return a & b

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_vertex(self, label: Vertex) -> int:
        """Add an isolated vertex (no-op when present); return its id."""
        existing = self._ids.get(label)
        if existing is not None:
            return existing
        vid = len(self._labels)
        self._labels.append(label)
        self._ids[label] = vid
        self._sort_keys.append(sort_key(label))
        self._degrees.append(0)
        self._nbr_sets.append(set())
        self._version += 1
        return vid

    def insert_edge_ids(self, u: int, v: int, common: Optional[Set[int]] = None) -> Set[int]:
        """Insert the edge ``(u, v)`` (ids); return ``N(u) ∩ N(v)``.

        The returned common-neighbour set is exactly the rest of the
        Observation-1 affected set ``{u, v} ∪ N(u) ∩ N(v)`` — computed
        anyway for score-cache invalidation, so callers get it for free
        (or may pass it in via ``common`` when they already hold it).
        """
        if u == v:
            raise SelfLoopError(self._labels[u])
        nbr_u = self._nbr_sets[u]
        nbr_v = self._nbr_sets[v]
        if v in nbr_u:
            raise EdgeExistsError(self._labels[u], self._labels[v])
        if common is None:
            common = nbr_u & nbr_v if len(nbr_u) <= len(nbr_v) else nbr_v & nbr_u
        if self._summaries:
            self._patch_summaries(u, v, common, inserting=True)
        nbr_u.add(v)
        nbr_v.add(u)
        self._degrees[u] += 1
        self._degrees[v] += 1
        self._num_edges += 1
        self._record_delta(u, v, inserting=True)
        self._invalidate(u, v, common)
        self._maybe_rebuild()
        return common

    def delete_edge_ids(self, u: int, v: int, common: Optional[Set[int]] = None) -> Set[int]:
        """Delete the edge ``(u, v)`` (ids); return ``N(u) ∩ N(v)``."""
        nbr_u = self._nbr_sets[u]
        nbr_v = self._nbr_sets[v]
        if v not in nbr_u:
            raise EdgeNotFoundError(self._labels[u], self._labels[v])
        if common is None:
            common = nbr_u & nbr_v if len(nbr_u) <= len(nbr_v) else nbr_v & nbr_u
        if self._summaries:
            self._patch_summaries(u, v, common, inserting=False)
        nbr_u.discard(v)
        nbr_v.discard(u)
        self._degrees[u] -= 1
        self._degrees[v] -= 1
        self._num_edges -= 1
        self._record_delta(u, v, inserting=False)
        self._invalidate(u, v, common)
        self._maybe_rebuild()
        return common

    def insert_edge(self, u: Vertex, v: Vertex) -> Set[Vertex]:
        """Label-level insert (endpoints auto-added); return affected labels.

        The returned set is Observation 1's ``{u, v} ∪ N(u) ∩ N(v)``.
        """
        if u == v:
            raise SelfLoopError(u)
        iu = self.add_vertex(u)
        iv = self.add_vertex(v)
        common = self.insert_edge_ids(iu, iv)
        labels = self._labels
        return {u, v} | {labels[w] for w in common}

    def delete_edge(self, u: Vertex, v: Vertex) -> Set[Vertex]:
        """Label-level delete; return the affected labels (Observation 1)."""
        iu = self._ids.get(u)
        iv = self._ids.get(v)
        if iu is None or iv is None:
            raise EdgeNotFoundError(u, v)
        common = self.delete_edge_ids(iu, iv)
        labels = self._labels
        return {u, v} | {labels[w] for w in common}

    # ------------------------------------------------------------------
    # Memoised ego scores
    # ------------------------------------------------------------------
    def seed_scores(self, scores: Dict[int, float]) -> None:
        """Prime the memoised ego-score cache with known-exact values."""
        self._score_cache.update(scores)

    def cached_score_ids(self) -> Set[int]:
        """Return the ids whose memoised ego score is currently valid."""
        return set(self._score_cache)

    def _invalidate(self, u: int, v: int, common: Iterable[int]) -> None:
        """Drop the memoised scores of the Observation-1 affected set."""
        self._version += 1
        cache = self._score_cache
        if not cache:
            return
        cache.pop(u, None)
        cache.pop(v, None)
        for w in common:
            cache.pop(w, None)

    # ------------------------------------------------------------------
    # Incremental ego-summary patching (exact integer state)
    # ------------------------------------------------------------------
    def _patch_summaries(
        self, u: int, v: int, common: Set[int], inserting: bool
    ) -> None:
        """Patch the memoised ego summaries of the affected vertices.

        Called *before* the adjacency sets change, with ``common`` the
        pre-update ``N(u) ∩ N(v)``.  Applies the Lemma 4–7 case analysis as
        exact integer edits to each affected vertex's ``(edges_in_ego,
        linker)`` summary, so a summary stays equal — key for key, count
        for count — to what a fresh enumeration of the post-update ego
        network would produce:

        * endpoint ``e``: the other endpoint ``o`` joins/leaves ``N(e)``;
          the pairs ``(o, x)`` appear with connector count
          ``|common ∩ N(x)|`` (or vanish), the adjacent ones — ``x ∈
          common`` — move ``edges_in_ego`` by ``|common|``, and every
          non-adjacent pair inside ``common`` gains/loses the connector
          ``o``;
        * common neighbour ``w``: the pair ``(u, v)`` flips between edge
          and non-adjacent pair (count ``|common ∩ N(w)|``), and the pairs
          ``(x, v)`` / ``(x, u)`` with ``x`` adjacent to the other endpoint
          gain/lose the connector ``u`` / ``v``.

        When ``common`` is empty every case degenerates to a no-op for the
        common-neighbour loop and to pure pair-appearance/vanishing with
        zero connectors for the endpoints — no stored state changes at all.
        """
        summaries = self._summaries
        nbr_sets = self._nbr_sets
        nbr_u, nbr_v = nbr_sets[u], nbr_sets[v]
        common_list = list(common) if common else ()
        cost = self._summary_cost

        # Endpoints (Lemmas 4 and 6).
        for e, o, ne in ((u, v, nbr_u), (v, u, nbr_v)):
            entry = summaries.get(e)
            if entry is None:
                continue
            edges, linker = entry
            for i, x in enumerate(common_list):
                sx = nbr_sets[x]
                for y in common_list[i + 1 :]:
                    if y in sx:
                        continue
                    key = (x, y) if x < y else (y, x)
                    if inserting:
                        count = linker.get(key, 0)
                        if count == 0:
                            cost += 1
                        linker[key] = count + 1
                    else:
                        count = linker[key]  # >= 1: o is a connector
                        if count == 1:
                            del linker[key]
                            cost -= 1
                        else:
                            linker[key] = count - 1
            if common:
                if inserting:
                    for x in ne:
                        if x in common:
                            continue
                        count = len(common & nbr_sets[x])
                        if count:
                            linker[(o, x) if o < x else (x, o)] = count
                            cost += 1
                    summaries[e] = (edges + len(common), linker)
                else:
                    pop = linker.pop
                    for x in ne:
                        if x == o or x in common:
                            continue
                        if pop((o, x) if o < x else (x, o), None) is not None:
                            cost -= 1
                    summaries[e] = (edges - len(common), linker)

        # Common neighbours (Lemmas 5 and 7).
        if not common:
            self._summary_cost = cost
            return
        uv_key = (u, v) if u < v else (v, u)
        for w in common_list:
            entry = summaries.get(w)
            if entry is None:
                continue
            edges, linker = entry
            nw = nbr_sets[w]
            if inserting:
                if linker.pop(uv_key, None) is not None:
                    cost -= 1  # present iff |common ∩ N(w)| > 0
                edges += 1
            else:
                count = len(common & nw)
                if count:
                    linker[uv_key] = count
                    cost += 1
                edges -= 1
            cw_u = nw & nbr_u if len(nw) <= len(nbr_u) else nbr_u & nw
            cw_v = nw & nbr_v if len(nw) <= len(nbr_v) else nbr_v & nw
            for members, anchor_set, other in ((cw_u, nbr_v, v), (cw_v, nbr_u, u)):
                for x in members:
                    if x == u or x == v or x in anchor_set:
                        continue
                    key = (x, other) if x < other else (other, x)
                    if inserting:
                        count = linker.get(key, 0)
                        if count == 0:
                            cost += 1
                        linker[key] = count + 1
                    else:
                        count = linker[key]  # >= 1: the other endpoint connects
                        if count == 1:
                            del linker[key]
                            cost -= 1
                        else:
                            linker[key] = count - 1
            summaries[w] = (edges, linker)
        self._summary_cost = cost

    # ------------------------------------------------------------------
    # Delta bookkeeping
    # ------------------------------------------------------------------
    def _record_delta(self, u: int, v: int, inserting: bool) -> None:
        """Track the divergence of the edge ``(u, v)`` from the base snapshot.

        Re-inserting a delta-deleted edge (or deleting a delta-inserted one)
        cancels the record instead of stacking a second one, so
        ``delta_records`` always counts the edges on which the overlay and
        its base actually differ.
        """
        cancel, record = (self._removed, self._added) if inserting else (self._added, self._removed)
        pending = cancel.get(u)
        if pending is not None and v in pending:
            pending.discard(v)
            cancel[v].discard(u)
            self._delta_records -= 1
            return
        record.setdefault(u, set()).add(v)
        record.setdefault(v, set()).add(u)
        self._delta_records += 1
