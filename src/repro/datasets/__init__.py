"""Dataset registry: synthetic stand-ins for the paper's evaluation graphs.

The paper's experiments use five SNAP datasets (Youtube, WikiTalk, DBLP,
Pokec, LiveJournal) and two DBLP-derived case-study graphs (DB, IR).  None of
these can be downloaded in the offline environment, so this subpackage
provides reproducible synthetic graphs of the same structural class and with
the same relative ordering of sizes — see DESIGN.md for the substitution
rationale.  Users who do have the original edge lists can load them with
:func:`repro.graph.io.read_edge_list` and feed them to every algorithm and
benchmark unchanged.
"""

from repro.datasets.collaboration import CollaborationGraph, db_case_study_graph, ir_case_study_graph
from repro.datasets.paper_example import paper_example_graph, paper_figure1_like_graph
from repro.datasets.registry import DatasetSpec, dataset_names, load_dataset, registry_table

__all__ = [
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
    "registry_table",
    "CollaborationGraph",
    "db_case_study_graph",
    "ir_case_study_graph",
    "paper_example_graph",
    "paper_figure1_like_graph",
]
