"""The paper's running example, as far as it can be reconstructed exactly.

Example 1 of the paper specifies the ego network of vertex ``d`` completely:
``N(d) = {a, b, c, g, h, i}`` with the in-ego edges
``a–b, a–c, b–c, c–g, c–h, g–i, h–i`` — this yields ``CB(d) = 14/3`` and is
reproduced *exactly* by :func:`paper_example_graph` (the correctness anchor
used by the unit tests).

The full 16-vertex graph of Fig. 1(a) is only shown as a drawing; the text
does not list its edges, so it cannot be reconstructed with certainty.
:func:`paper_figure1_like_graph` therefore builds a graph *in the spirit of*
Fig. 1(a): the exact ego network of ``d`` above, extended with the star-like
vertex ``x`` (whose ego-betweenness equals its upper bound), a well-connected
hub ``f`` and the low-degree periphery ``j, k, u, v, y, z``.  It is used by
the examples and documentation, not as a numeric oracle.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graph.graph import Graph

__all__ = ["paper_example_graph", "paper_figure1_like_graph", "EXAMPLE1_EGO_EDGES"]

#: The exact ego network of vertex ``d`` from Example 1 of the paper.
EXAMPLE1_EGO_EDGES: List[Tuple[str, str]] = [
    # spokes from d to its six neighbours
    ("d", "a"),
    ("d", "b"),
    ("d", "c"),
    ("d", "g"),
    ("d", "h"),
    ("d", "i"),
    # edges between the neighbours
    ("a", "b"),
    ("a", "c"),
    ("b", "c"),
    ("c", "g"),
    ("c", "h"),
    ("g", "i"),
    ("h", "i"),
]


def paper_example_graph() -> Graph:
    """Return the exact ego network of vertex ``d`` from Example 1.

    In this 7-vertex graph the ego network of ``d`` is the whole graph, so
    ``CB(d) = 14/3`` exactly as computed in the paper.
    """
    return Graph(edges=EXAMPLE1_EGO_EDGES)


def paper_figure1_like_graph() -> Graph:
    """Return a 16-vertex graph in the spirit of the paper's Fig. 1(a).

    The graph contains the exact Example-1 ego network of ``d``, a hub ``f``
    bridging two regions, a star centre ``x`` whose ego-betweenness equals
    its static upper bound, and the low-degree periphery
    ``j, k, u, v, y, z``.  Vertex labels match the paper's figure; edge-level
    details beyond the ``d`` ego network are this reproduction's own choice
    (see the module docstring).
    """
    edges: List[Tuple[str, str]] = list(EXAMPLE1_EGO_EDGES)
    edges += [
        # the hub f bridges the c/i region with the x-star region
        ("f", "c"),
        ("f", "i"),
        ("f", "h"),
        ("f", "k"),
        ("f", "x"),
        ("f", "b"),
        # e sits between c, g, i and the periphery j
        ("e", "c"),
        ("e", "g"),
        ("e", "i"),
        ("e", "a"),
        ("e", "j"),
        # the star around x
        ("x", "y"),
        ("x", "z"),
        ("x", "u"),
        ("x", "v"),
        # low-degree periphery
        ("j", "i"),
        ("j", "k"),
        ("k", "j"),
    ]
    graph = Graph()
    for u, v in edges:
        graph.add_edge(u, v, exist_ok=True)
    return graph
