"""Synthetic collaboration graphs for the DB / IR case study (Exp-7).

The paper extracts two co-authorship subgraphs from DBLP — ``DB`` (database
and data-mining venues, 37,177 authors / 131,715 edges) and ``IR``
(information-retrieval venues, 13,445 authors / 37,428 edges) — and shows
that the top-10 authors by ego-betweenness almost coincide with the top-10 by
betweenness, both lists being dominated by prolific, community-bridging
researchers.

This module builds scaled synthetic analogues: overlapping-clique
collaboration graphs in which a small cadre of "prolific authors" joins many
cliques (papers) across several planted research communities, plus
deterministic human-readable author names so that the Table III / Table IV
style outputs read like the paper's.  The real scholar names of the paper are
intentionally not reproduced — the synthetic graphs have no relation to real
individuals.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph

__all__ = ["CollaborationGraph", "db_case_study_graph", "ir_case_study_graph"]

_FIRST_NAMES = [
    "Alex", "Bailey", "Casey", "Devon", "Emery", "Finley", "Gray", "Harper",
    "Indira", "Jules", "Kiran", "Logan", "Morgan", "Noa", "Oakley", "Parker",
    "Quinn", "Riley", "Sasha", "Taylor", "Uma", "Vesna", "Wren", "Xiomara",
    "Yael", "Zion",
]
_LAST_NAMES = [
    "Abara", "Bell", "Castillo", "Demir", "Egede", "Fujita", "Garza", "Haddad",
    "Ivanov", "Joshi", "Karlsson", "Laurent", "Moreau", "Nakamura", "Okafor",
    "Petrov", "Qureshi", "Rossi", "Sato", "Tanaka", "Ueda", "Varga", "Weber",
    "Xu", "Yilmaz", "Zhao",
]


@dataclass
class CollaborationGraph:
    """A synthetic co-authorship graph plus author metadata.

    Attributes
    ----------
    name:
        Case-study label (``"DB"`` or ``"IR"``).
    graph:
        The co-authorship graph (vertices are integer author ids).
    author_names:
        Deterministic display name per author id.
    communities:
        Community index per author id (the planted research communities).
    """

    name: str
    graph: Graph
    author_names: Dict[int, str]
    communities: Dict[int, int]

    @property
    def num_authors(self) -> int:
        """Number of authors in the graph."""
        return self.graph.num_vertices

    def display_name(self, author_id: int) -> str:
        """Return the display name of ``author_id`` (falls back to the id)."""
        return self.author_names.get(author_id, f"Author {author_id}")


def db_case_study_graph(scale: float = 1.0) -> CollaborationGraph:
    """Return the DB-like case-study graph (larger, database community)."""
    return _build_case_study(
        name="DB",
        num_communities=6,
        papers_per_community=max(int(220 * scale), 40),
        prolific_authors_per_community=4,
        seed=1001,
    )


def ir_case_study_graph(scale: float = 1.0) -> CollaborationGraph:
    """Return the IR-like case-study graph (smaller, information retrieval)."""
    return _build_case_study(
        name="IR",
        num_communities=4,
        papers_per_community=max(int(120 * scale), 30),
        prolific_authors_per_community=3,
        seed=2002,
    )


def _build_case_study(
    name: str,
    num_communities: int,
    papers_per_community: int,
    prolific_authors_per_community: int,
    seed: int,
) -> CollaborationGraph:
    """Build a planted-community co-authorship graph.

    Every community has a pool of regular authors and a few prolific authors;
    each paper is a clique of 2–6 authors drawn mostly from one community,
    with prolific authors over-represented and occasionally co-authoring
    across communities (those cross-community papers create the bridges the
    case study is about).
    """
    if num_communities < 1 or papers_per_community < 1:
        raise InvalidParameterError("community and paper counts must be positive")

    rng = random.Random(seed)
    graph = Graph()
    communities: Dict[int, int] = {}
    author_names: Dict[int, str] = {}

    next_id = 0

    def new_author(community: int) -> int:
        nonlocal next_id
        author = next_id
        next_id += 1
        communities[author] = community
        first = _FIRST_NAMES[author % len(_FIRST_NAMES)]
        last = _LAST_NAMES[(author // len(_FIRST_NAMES)) % len(_LAST_NAMES)]
        suffix = author // (len(_FIRST_NAMES) * len(_LAST_NAMES))
        author_names[author] = f"{first} {last}" + (f" {suffix + 1}" if suffix else "")
        graph.add_vertex(author)
        return author

    regular_pool: Dict[int, List[int]] = {}
    prolific_pool: Dict[int, List[int]] = {}
    for community in range(num_communities):
        regular_pool[community] = [
            new_author(community) for _ in range(papers_per_community // 2 + 5)
        ]
        prolific_pool[community] = [
            new_author(community) for _ in range(prolific_authors_per_community)
        ]

    all_prolific = [a for pool in prolific_pool.values() for a in pool]

    for community in range(num_communities):
        for _ in range(papers_per_community):
            paper_size = rng.randint(2, 6)
            authors: List[int] = []
            # Prolific authors join ~60% of papers in their community and a
            # slice of papers elsewhere (cross-community bridges).
            if rng.random() < 0.6:
                authors.append(rng.choice(prolific_pool[community]))
            if rng.random() < 0.15:
                authors.append(rng.choice(all_prolific))
            while len(authors) < paper_size:
                authors.append(rng.choice(regular_pool[community]))
            authors = list(dict.fromkeys(authors))
            for i, u in enumerate(authors):
                for v in authors[i + 1 :]:
                    graph.add_edge(u, v, exist_ok=True)

    return CollaborationGraph(
        name=name, graph=graph, author_names=author_names, communities=communities
    )
