"""Named synthetic stand-ins for the paper's five evaluation datasets.

Table I of the paper lists the datasets, their sizes and types:

=============  ==========  ===========  ========  =======================
Dataset        n           m            d_max     Type
=============  ==========  ===========  ========  =======================
Youtube        1,134,890   2,987,624    28,754    Social network
WikiTalk       2,394,385   4,659,565    100,029   Communication network
DBLP           1,843,617   8,350,260    2,213     Collaboration network
Pokec          1,632,803   22,301,964   14,854    Social network
LiveJournal    3,997,962   34,681,189   14,815    Social network
=============  ==========  ===========  ========  =======================

The synthetic stand-ins preserve (a) the structural class of each dataset,
(b) the relative ordering of sizes (LiveJournal largest, Youtube smallest
social network, WikiTalk with the most extreme degree skew, DBLP
triangle-rich) and (c) reproducibility via fixed seeds, while scaling the
absolute sizes down to what pure Python can process in benchmark time.  The
``scale`` parameter scales the vertex counts linearly so that tests can use
tiny instances and benchmark runs can use larger ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.errors import DatasetError, InvalidParameterError
from repro.graph.generators import (
    barabasi_albert_graph,
    overlapping_cliques_graph,
    powerlaw_cluster_graph,
    random_bipartite_expansion_graph,
)
from repro.graph.graph import Graph

__all__ = ["DatasetSpec", "dataset_names", "load_dataset", "registry_table", "DEFAULT_SCALE"]

DEFAULT_SCALE = 1.0


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one registry dataset.

    Attributes
    ----------
    name:
        Registry key (lower-case paper dataset name).
    paper_name:
        The dataset name as printed in the paper.
    category:
        Structural class ("social", "communication", "collaboration").
    paper_vertices / paper_edges / paper_max_degree:
        The sizes reported in Table I of the paper (for reference only).
    builder:
        Callable ``scale -> Graph`` producing the synthetic stand-in.
    description:
        Human-readable note on the substitution.
    """

    name: str
    paper_name: str
    category: str
    paper_vertices: int
    paper_edges: int
    paper_max_degree: int
    builder: Callable[[float], Graph]
    description: str


def _youtube(scale: float) -> Graph:
    n = max(int(1200 * scale), 60)
    return powerlaw_cluster_graph(n=n, m=3, p=0.25, seed=101)


def _wikitalk(scale: float) -> Graph:
    hubs = max(int(60 * scale), 8)
    leaves = max(int(2400 * scale), 80)
    return random_bipartite_expansion_graph(
        num_hubs=hubs, num_leaves=leaves, attachments=2, seed=202
    )


def _dblp(scale: float) -> Graph:
    cliques = max(int(650 * scale), 30)
    return overlapping_cliques_graph(
        num_cliques=cliques,
        clique_size_range=(3, 7),
        overlap=2,
        extra_edges=max(int(40 * scale), 4),
        seed=303,
    )


def _pokec(scale: float) -> Graph:
    n = max(int(1600 * scale), 80)
    return barabasi_albert_graph(n=n, m=6, seed=404)


def _livejournal(scale: float) -> Graph:
    n = max(int(2600 * scale), 120)
    return powerlaw_cluster_graph(n=n, m=5, p=0.15, seed=505)


_REGISTRY: Dict[str, DatasetSpec] = {
    "youtube": DatasetSpec(
        name="youtube",
        paper_name="Youtube",
        category="social",
        paper_vertices=1_134_890,
        paper_edges=2_987_624,
        paper_max_degree=28_754,
        builder=_youtube,
        description="Power-law social graph with moderate clustering (Holme-Kim).",
    ),
    "wikitalk": DatasetSpec(
        name="wikitalk",
        paper_name="WikiTalk",
        category="communication",
        paper_vertices=2_394_385,
        paper_edges=4_659_565,
        paper_max_degree=100_029,
        builder=_wikitalk,
        description="Hub-and-spoke communication graph with extreme degree skew.",
    ),
    "dblp": DatasetSpec(
        name="dblp",
        paper_name="DBLP",
        category="collaboration",
        paper_vertices=1_843_617,
        paper_edges=8_350_260,
        paper_max_degree=2_213,
        builder=_dblp,
        description="Overlapping-clique collaboration graph (papers as cliques).",
    ),
    "pokec": DatasetSpec(
        name="pokec",
        paper_name="Pokec",
        category="social",
        paper_vertices=1_632_803,
        paper_edges=22_301_964,
        paper_max_degree=14_854,
        builder=_pokec,
        description="Denser preferential-attachment social graph.",
    ),
    "livejournal": DatasetSpec(
        name="livejournal",
        paper_name="LiveJournal",
        category="social",
        paper_vertices=3_997_962,
        paper_edges=34_681_189,
        paper_max_degree=14_815,
        builder=_livejournal,
        description="Largest stand-in: power-law social graph with clustering.",
    ),
}


def dataset_names() -> List[str]:
    """Return the registry dataset names in the paper's Table I order."""
    return list(_REGISTRY)


def dataset_spec(name: str) -> DatasetSpec:
    """Return the :class:`DatasetSpec` for ``name`` (case-insensitive)."""
    key = name.lower()
    if key not in _REGISTRY:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(dataset_names())}"
        )
    return _REGISTRY[key]


def load_dataset(name: str, scale: float = DEFAULT_SCALE) -> Graph:
    """Build and return the synthetic stand-in for dataset ``name``.

    Parameters
    ----------
    scale:
        Linear scaling factor for the instance size; ``1.0`` is the default
        benchmark size, smaller values produce proportionally smaller graphs
        for quick tests.
    """
    if scale <= 0:
        raise InvalidParameterError("scale must be positive")
    return dataset_spec(name).builder(scale)


def registry_table(scale: float = DEFAULT_SCALE) -> List[Dict[str, object]]:
    """Return one row per dataset with paper sizes and stand-in sizes.

    Used by the Table I experiment; building every stand-in at the requested
    scale is cheap relative to the experiments that consume them.
    """
    rows: List[Dict[str, object]] = []
    for name in dataset_names():
        spec = dataset_spec(name)
        graph = load_dataset(name, scale=scale)
        rows.append(
            {
                "dataset": spec.paper_name,
                "category": spec.category,
                "paper_n": spec.paper_vertices,
                "paper_m": spec.paper_edges,
                "paper_dmax": spec.paper_max_degree,
                "repro_n": graph.num_vertices,
                "repro_m": graph.num_edges,
                "repro_dmax": graph.max_degree(),
                "description": spec.description,
            }
        )
    return rows
