"""Parallel all-vertex ego-betweenness computation (Section V).

Two engines are provided, mirroring the paper's VertexPEBW and EdgePEBW:

* :func:`~repro.parallel.engines.vertex_parallel_ego_betweenness`
  (VertexPEBW) — the unit of parallel work is a vertex; tasks are assigned to
  workers in contiguous blocks of the vertex ordering, so the skewed degree
  distribution of real graphs translates directly into skewed worker loads.
* :func:`~repro.parallel.engines.edge_parallel_ego_betweenness`
  (EdgePEBW) — the unit of accounting is the directed edge work inside each
  ego network; tasks are spread over workers so that every worker receives an
  approximately equal amount of edge work, which removes the skew and yields
  the higher speedups of Fig. 10.

Both engines produce exactly the same values as the sequential
:func:`repro.core.ego_betweenness.all_ego_betweenness` for every worker
count; only the schedule differs.

Execution is owned by the persistent
:class:`~repro.parallel.runtime.ExecutionRuntime` — a lazily-created,
reusable worker pool whose workers receive the flat CSR arrays once per
graph version through a zero-copy shared-memory transport and then execute
vertex chunks by id range (statically partitioned, or dynamically chunked
through the pool's shared task queue).  :mod:`repro.parallel.executor`
keeps the one-shot ``run_chunks`` entry point (plus the legacy hash-oracle
payload path), and :mod:`repro.parallel.load_balance` provides the
deterministic speedup model used to reproduce the shape of Fig. 10
independently of Python's process-start overhead.
"""

from repro.parallel.engines import (
    ParallelRunResult,
    edge_parallel_ego_betweenness,
    vertex_parallel_ego_betweenness,
)
from repro.parallel.executor import ParallelBackend, run_chunks, run_chunks_csr
from repro.parallel.load_balance import LoadBalanceReport, simulate_schedule
from repro.parallel.partition import (
    balanced_partition,
    block_partition,
    vertex_work_estimates,
    vertex_work_estimates_csr,
)
from repro.parallel.runtime import (
    BatchStats,
    ExecutionRuntime,
    PayloadStore,
    RuntimeStats,
    WorkerPool,
    shared_payload_store,
    shared_worker_pool,
)

__all__ = [
    "vertex_parallel_ego_betweenness",
    "edge_parallel_ego_betweenness",
    "ParallelRunResult",
    "ParallelBackend",
    "ExecutionRuntime",
    "WorkerPool",
    "PayloadStore",
    "shared_worker_pool",
    "shared_payload_store",
    "RuntimeStats",
    "BatchStats",
    "run_chunks",
    "run_chunks_csr",
    "block_partition",
    "balanced_partition",
    "vertex_work_estimates",
    "vertex_work_estimates_csr",
    "simulate_schedule",
    "LoadBalanceReport",
]
