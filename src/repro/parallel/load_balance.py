"""Deterministic load-balance analysis and speedup modelling.

The paper's Fig. 10 reports wall-clock speedups of OpenMP threads on a large
machine.  In the offline Python reproduction the interesting quantity — how
much better the edge-balanced schedule is than the vertex-blocked schedule —
is a property of the *schedule*, not of the thread runtime, so it can be
computed exactly: the parallel makespan of a schedule is the largest total
work assigned to any worker, and the speedup over one worker is
``total work / makespan``.  This module computes that model from the same
work estimates the engines use, which reproduces the shape of Fig. 10
deterministically; the ``process`` backend of the executor provides the
corresponding real measurements for users who want them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import InvalidParameterError
from repro.graph.graph import Vertex

__all__ = ["LoadBalanceReport", "simulate_schedule"]


@dataclass(frozen=True)
class LoadBalanceReport:
    """Per-worker load statistics for one schedule.

    Attributes
    ----------
    num_workers:
        Number of workers in the schedule.
    worker_loads:
        Total estimated work assigned to each worker.
    total_work:
        Sum of all task work.
    makespan:
        The largest worker load — the simulated parallel runtime.
    speedup:
        ``total_work / makespan`` (1.0 for a single worker, bounded above by
        ``num_workers``).
    balance:
        Mean worker load divided by the maximum worker load (1.0 = perfectly
        balanced).
    """

    num_workers: int
    worker_loads: List[float]
    total_work: float
    makespan: float
    speedup: float
    balance: float


def simulate_schedule(
    chunks: Sequence[Sequence[Vertex]],
    weights: Dict[Vertex, float],
    num_workers: int,
) -> LoadBalanceReport:
    """Compute the load-balance report for an explicit schedule.

    Parameters
    ----------
    chunks:
        The per-worker task lists produced by a partitioning strategy.
    weights:
        Per-task work estimates.
    num_workers:
        Number of workers (``len(chunks)`` may be smaller when some workers
        received no tasks).
    """
    if num_workers < 1:
        raise InvalidParameterError("num_workers must be positive")
    loads = [sum(weights.get(task, 1.0) for task in chunk) for chunk in chunks]
    while len(loads) < num_workers:
        loads.append(0.0)
    total = sum(loads)
    makespan = max(loads) if loads else 0.0
    if makespan <= 0.0:
        speedup = 1.0
        balance = 1.0
    else:
        speedup = total / makespan if total else 1.0
        mean_load = total / num_workers
        balance = mean_load / makespan
    return LoadBalanceReport(
        num_workers=num_workers,
        worker_loads=loads,
        total_work=total,
        makespan=makespan,
        speedup=speedup,
        balance=balance,
    )
