"""The two parallel all-vertex engines: VertexPEBW and EdgePEBW.

Both engines compute the exact ego-betweenness of every vertex and agree with
the sequential computation for any worker count; they differ only in how the
per-vertex tasks are assigned to workers (see :mod:`repro.parallel.partition`
for the rationale).  Each engine returns a :class:`ParallelRunResult` that
carries the scores, the schedule and the per-worker load statistics the
Fig. 10 experiment reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph, Vertex
from repro.parallel.executor import ParallelBackend, run_chunks
from repro.parallel.load_balance import LoadBalanceReport, simulate_schedule
from repro.parallel.partition import balanced_partition, block_partition, vertex_work_estimates

__all__ = ["ParallelRunResult", "vertex_parallel_ego_betweenness", "edge_parallel_ego_betweenness"]


@dataclass
class ParallelRunResult:
    """Outcome of a parallel all-vertex ego-betweenness run.

    Attributes
    ----------
    scores:
        The exact ego-betweenness of every vertex.
    engine:
        ``"VertexPEBW"`` or ``"EdgePEBW"``.
    num_workers:
        The requested degree of parallelism.
    elapsed_seconds:
        End-to-end wall-clock time of the run.
    load_report:
        Deterministic per-worker load statistics (estimated work per worker,
        simulated makespan and speedup) — the quantity Fig. 10's speedup
        curves are reproduced from.
    chunk_seconds:
        Measured wall-clock time per chunk (backend dependent).
    """

    scores: Dict[Vertex, float]
    engine: str
    num_workers: int
    elapsed_seconds: float
    load_report: LoadBalanceReport
    chunk_seconds: List[float] = field(default_factory=list)


def vertex_parallel_ego_betweenness(
    graph: Graph,
    num_workers: int,
    backend: ParallelBackend | str = ParallelBackend.SERIAL,
) -> ParallelRunResult:
    """VertexPEBW: vertex-partitioned parallel ego-betweenness.

    Vertices are assigned to workers in contiguous blocks of the degree
    ordering (highest degree first), which mirrors the per-vertex triangle
    enumeration of the paper's VertexPEBW and inherits its load imbalance.
    """
    return _run_engine(graph, num_workers, backend, engine="VertexPEBW")


def edge_parallel_ego_betweenness(
    graph: Graph,
    num_workers: int,
    backend: ParallelBackend | str = ParallelBackend.SERIAL,
) -> ParallelRunResult:
    """EdgePEBW: edge-work-balanced parallel ego-betweenness.

    Vertex tasks are spread over workers so that every worker receives an
    approximately equal amount of *edge work* (the number of directed
    adjacency probes inside the ego networks), which is the Python analogue
    of parallelising over directed edges and restores load balance under
    degree skew.
    """
    return _run_engine(graph, num_workers, backend, engine="EdgePEBW")


def _run_engine(
    graph: Graph,
    num_workers: int,
    backend: ParallelBackend | str,
    engine: str,
) -> ParallelRunResult:
    if num_workers < 1:
        raise InvalidParameterError("num_workers must be positive")

    start = time.perf_counter()
    weights = vertex_work_estimates(graph)
    # Order tasks by decreasing estimated work (equivalently, roughly by the
    # degree order), so block partitions concentrate hubs as VertexPEBW does.
    tasks: List[Vertex] = sorted(graph.vertices(), key=lambda v: -weights[v])
    if engine == "VertexPEBW":
        chunks = block_partition(tasks, num_workers)
    else:
        chunks = balanced_partition(tasks, weights, num_workers)

    scores, chunk_seconds = run_chunks(graph, chunks, backend=backend)
    elapsed = time.perf_counter() - start
    report = simulate_schedule(chunks, weights, num_workers)
    return ParallelRunResult(
        scores=scores,
        engine=engine,
        num_workers=num_workers,
        elapsed_seconds=elapsed,
        load_report=report,
        chunk_seconds=chunk_seconds,
    )
