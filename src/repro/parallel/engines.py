"""The two parallel all-vertex engines: VertexPEBW and EdgePEBW.

Both engines compute the exact ego-betweenness of every vertex and agree with
the sequential computation for any worker count; they differ only in how the
per-vertex tasks are assigned to workers (see :mod:`repro.parallel.partition`
for the rationale).  Each engine returns a :class:`ParallelRunResult` that
carries the scores, the schedule and the per-worker load statistics the
Fig. 10 experiment reports.

Execution goes through the persistent
:class:`~repro.parallel.runtime.ExecutionRuntime` whenever a CSR snapshot
exists: pass ``runtime=`` to share one pool and one shipped payload across
many engine calls (an :class:`~repro.session.EgoSession` does this
automatically); without it each call builds an ephemeral runtime.  The
deterministic load model is always derived from the static
:func:`~repro.parallel.partition.balanced_partition` /
:func:`~repro.parallel.partition.block_partition` schedule — Fig. 10's
quantity — even when ``schedule="dynamic"`` lets the runtime's shared task
queue execute weight-balanced oversubscribed chunks instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import InvalidParameterError
from repro.graph.csr import CompactGraph
from repro.graph.dynamic_csr import DynamicCompactGraph
from repro.graph.graph import Graph, Vertex
from repro.parallel.executor import (
    ParallelBackend,
    _run_process_pool,
    _run_serial_hash,
    compute_chunk_scores,
)
from repro.parallel.load_balance import LoadBalanceReport, simulate_schedule
from repro.parallel.partition import (
    balanced_partition,
    block_partition,
    vertex_work_estimates,
    vertex_work_estimates_csr,
)
from repro.parallel.runtime import ExecutionRuntime

__all__ = ["ParallelRunResult", "vertex_parallel_ego_betweenness", "edge_parallel_ego_betweenness"]


@dataclass
class ParallelRunResult:
    """Outcome of a parallel all-vertex ego-betweenness run.

    Attributes
    ----------
    scores:
        The exact ego-betweenness of every vertex.
    engine:
        ``"VertexPEBW"`` or ``"EdgePEBW"``.
    num_workers:
        The requested degree of parallelism.
    elapsed_seconds:
        End-to-end wall-clock time of the run (partitioning + setup +
        compute).
    setup_seconds:
        One-time execution overhead inside this run: worker-pool start-up
        plus graph-payload shipping.  0.0 when a warm
        :class:`ExecutionRuntime` served the run — the steady state of a
        long-lived service.
    compute_seconds:
        Wall-clock time of the chunk execution itself.  Speedup
        measurements should use this, not ``elapsed_seconds`` — the
        historical single-field timing silently charged the fork cost of
        the process pool to the parallel algorithm.
    load_report:
        Deterministic per-worker load statistics (estimated work per worker,
        simulated makespan and speedup) — the quantity Fig. 10's speedup
        curves are reproduced from.
    chunk_seconds:
        Measured kernel seconds per *executed* chunk.  With the default
        static schedule these align one-to-one with the engine's partition
        (the chunks the load report models); with ``schedule="dynamic"``
        they time the runtime's oversubscribed id-range chunks instead, so
        their count differs from the modelled partition — do not zip them
        with the static chunks in that case.
    """

    scores: Dict[Vertex, float]
    engine: str
    num_workers: int
    elapsed_seconds: float
    load_report: LoadBalanceReport
    chunk_seconds: List[float] = field(default_factory=list)
    setup_seconds: float = 0.0
    compute_seconds: float = 0.0


def vertex_parallel_ego_betweenness(
    graph: Graph,
    num_workers: int,
    backend: "ParallelBackend | str" = ParallelBackend.SERIAL,
    graph_backend: str = "auto",
    runtime: Optional[ExecutionRuntime] = None,
    schedule: str = "static",
    payload_key=None,
    task_deadline: Optional[float] = None,
    max_task_retries: Optional[int] = None,
) -> ParallelRunResult:
    """VertexPEBW: vertex-partitioned parallel ego-betweenness.

    Vertices are assigned to workers in contiguous blocks of the degree
    ordering (highest degree first), which mirrors the per-vertex triangle
    enumeration of the paper's VertexPEBW and inherits its load imbalance.

    ``graph_backend`` selects the storage the kernels run on: ``"auto"``
    (default) and ``"compact"`` convert once to the CSR backend — workers
    then receive the two flat CSR arrays instead of rebuilt adjacency
    dictionaries — while ``"hash"`` keeps the original hash-set path.
    ``runtime`` (CSR path only) reuses a persistent
    :class:`ExecutionRuntime` across calls; ``schedule="dynamic"`` executes
    runtime-chunked weight-balanced id ranges through the shared task queue
    instead of the engine's static chunks (the load report still models the
    static schedule); ``payload_key`` is the ``(graph_id, version)`` store
    key forwarded to the runtime's payload store (sessions pass theirs so
    multi-tenant stores account bytes per graph).  ``task_deadline`` /
    ``max_task_retries`` configure the supervision of an *ephemeral*
    runtime this call creates (``None`` keeps the runtime defaults; a
    caller-supplied ``runtime`` keeps its own knobs).  Scores are identical
    across every combination.
    """
    return _run_engine(
        graph, num_workers, backend, engine="VertexPEBW",
        graph_backend=graph_backend, runtime=runtime, schedule=schedule,
        payload_key=payload_key, task_deadline=task_deadline,
        max_task_retries=max_task_retries,
    )


def edge_parallel_ego_betweenness(
    graph: Graph,
    num_workers: int,
    backend: "ParallelBackend | str" = ParallelBackend.SERIAL,
    graph_backend: str = "auto",
    runtime: Optional[ExecutionRuntime] = None,
    schedule: str = "static",
    payload_key=None,
    task_deadline: Optional[float] = None,
    max_task_retries: Optional[int] = None,
) -> ParallelRunResult:
    """EdgePEBW: edge-work-balanced parallel ego-betweenness.

    Vertex tasks are spread over workers so that every worker receives an
    approximately equal amount of *edge work* (the number of directed
    adjacency probes inside the ego networks), which is the Python analogue
    of parallelising over directed edges and restores load balance under
    degree skew.  See :func:`vertex_parallel_ego_betweenness` for
    ``graph_backend`` / ``runtime`` / ``schedule``.
    """
    return _run_engine(
        graph, num_workers, backend, engine="EdgePEBW",
        graph_backend=graph_backend, runtime=runtime, schedule=schedule,
        payload_key=payload_key, task_deadline=task_deadline,
        max_task_retries=max_task_retries,
    )


def _runtime_options(
    task_deadline: Optional[float], max_task_retries: Optional[int]
) -> dict:
    """Supervision kwargs for an ephemeral runtime (None → module default)."""
    options = {}
    if task_deadline is not None:
        options["task_deadline"] = task_deadline
    if max_task_retries is not None:
        options["max_task_retries"] = max_task_retries
    return options


def _run_engine(
    graph: Graph,
    num_workers: int,
    backend: "ParallelBackend | str",
    engine: str,
    graph_backend: str = "auto",
    runtime: Optional[ExecutionRuntime] = None,
    schedule: str = "static",
    payload_key=None,
    task_deadline: Optional[float] = None,
    max_task_retries: Optional[int] = None,
) -> ParallelRunResult:
    from repro.core.csr_kernels import normalize_backend

    if num_workers < 1:
        raise InvalidParameterError("num_workers must be positive")
    if schedule not in ("static", "dynamic"):
        raise InvalidParameterError(
            f"unknown schedule {schedule!r}; use 'static' or 'dynamic'"
        )
    backend = ParallelBackend(backend)
    graph_backend = normalize_backend(graph_backend)

    if isinstance(graph, DynamicCompactGraph):
        # A mutable overlay (e.g. a dynamic EgoSession's state) is frozen to
        # an immutable CSR snapshot for the duration of the run.
        graph = graph.snapshot()

    start = time.perf_counter()
    setup_seconds = 0.0
    compute_seconds = 0.0
    if graph_backend == "hash":
        if isinstance(graph, CompactGraph):
            graph = graph.to_graph()
        weights = vertex_work_estimates(graph)
        # Order tasks by decreasing estimated work (equivalently, roughly by
        # the degree order), so block partitions concentrate hubs as
        # VertexPEBW does.
        tasks: List[Vertex] = sorted(graph.vertices(), key=lambda v: -weights[v])
        if engine == "VertexPEBW":
            chunks = block_partition(tasks, num_workers)
        else:
            chunks = balanced_partition(tasks, weights, num_workers)
        exec_start = time.perf_counter()
        if backend is ParallelBackend.SERIAL:
            scores, chunk_seconds = _run_serial_hash(graph, chunks)
        else:
            scores, chunk_seconds, setup_seconds = _run_process_pool(
                compute_chunk_scores, graph.to_adjacency(), chunks
            )
        compute_seconds = time.perf_counter() - exec_start - setup_seconds
    else:
        compact = graph if isinstance(graph, CompactGraph) else graph.to_compact()
        labels = compact.labels
        estimates = vertex_work_estimates_csr(compact)
        weights_by_id = {i: estimates[i] for i in range(len(labels))}
        task_ids = sorted(range(len(labels)), key=lambda i: -estimates[i])
        if engine == "VertexPEBW":
            id_chunks = block_partition(task_ids, num_workers)
        else:
            id_chunks = balanced_partition(task_ids, weights_by_id, num_workers)
        owns_runtime = runtime is None
        if owns_runtime:
            runtime = ExecutionRuntime(
                max_workers=num_workers,
                executor=backend,
                **_runtime_options(task_deadline, max_task_retries),
            )
        try:
            id_scores, batch = runtime.execute(
                compact,
                chunks=id_chunks if schedule == "static" else None,
                num_workers=num_workers,
                schedule=schedule,
                payload_key=payload_key,
            )
        finally:
            if owns_runtime:
                runtime.close()
        setup_seconds = batch.setup_seconds
        compute_seconds = batch.compute_seconds
        chunk_seconds = batch.chunk_seconds
        scores = {labels[i]: score for i, score in id_scores.items()}
        chunks = [[labels[i] for i in chunk] for chunk in id_chunks]
        weights = {labels[i]: estimates[i] for i in range(len(labels))}
    elapsed = time.perf_counter() - start
    report = simulate_schedule(chunks, weights, num_workers)
    return ParallelRunResult(
        scores=scores,
        engine=engine,
        num_workers=num_workers,
        elapsed_seconds=elapsed,
        load_report=report,
        chunk_seconds=chunk_seconds,
        setup_seconds=setup_seconds,
        compute_seconds=compute_seconds,
    )
