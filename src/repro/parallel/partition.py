"""Work partitioning strategies for the parallel engines.

The paper's key observation (Section V.B) is that distributing *vertices*
over threads leaves the load unbalanced because out-degrees — and hence the
per-vertex triangle-enumeration work — follow a heavily skewed distribution,
whereas distributing *directed edges* equalises the per-thread work because
the number of common out-neighbours per edge is far less skewed.

This module provides both strategies in a backend-independent form:

* :func:`block_partition` — contiguous, equally *sized* chunks of tasks
  (VertexPEBW's assignment);
* :func:`balanced_partition` — a longest-processing-time greedy assignment
  that equalises the per-worker *work*, where the work of a vertex task is
  its edge-level cost estimate (EdgePEBW's assignment);
* :func:`vertex_work_estimates` — the edge-work estimate
  ``Σ_{w ∈ N(p)} min(d(w), d(p))``, i.e. the number of directed adjacency
  probes the per-vertex kernel performs.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Sequence, Tuple

from repro.errors import InvalidParameterError
from repro.graph.csr import CompactGraph
from repro.graph.graph import Graph, Vertex

__all__ = [
    "vertex_work_estimates",
    "vertex_work_estimates_csr",
    "block_partition",
    "balanced_partition",
]


def vertex_work_estimates(graph: Graph) -> Dict[Vertex, float]:
    """Return the per-vertex edge-work estimate of the exact kernel.

    For vertex ``p`` the kernel intersects each neighbour's adjacency with
    ``N(p)``, so its cost is proportional to
    ``Σ_{w ∈ N(p)} min(d(w), d(p))`` — a quantity dominated by the directed
    edges inside the ego network.  The estimates drive the edge-balanced
    partition and the deterministic speedup model.
    """
    degrees = graph.degrees()
    estimates: Dict[Vertex, float] = {}
    for p in graph.vertices():
        dp = degrees[p]
        work = 0.0
        for w in graph.neighbors(p):
            work += min(degrees[w], dp)
        # The constant offset models per-vertex fixed costs so that very
        # low-degree vertices do not register as free.
        estimates[p] = work + 1.0
    return estimates


def vertex_work_estimates_csr(compact: CompactGraph) -> List[float]:
    """Return the per-vertex edge-work estimates, indexed by dense vertex id.

    The CSR twin of :func:`vertex_work_estimates`: the same
    ``Σ_{w ∈ N(p)} min(d(w), d(p)) + 1`` quantity, computed from the flat
    degree and adjacency arrays.  The values are identical to the hash
    estimates (the sums are integer-exact in floats), so schedules and the
    load-balance report agree between backends.
    """
    indptr, indices = compact.indptr, compact.indices
    degrees = compact.degrees
    estimates: List[float] = []
    for p in range(len(degrees)):
        dp = degrees[p]
        work = 1.0
        for w in indices[indptr[p] : indptr[p + 1]]:
            dw = degrees[w]
            work += dw if dw < dp else dp
        estimates.append(work)
    return estimates


def block_partition(tasks: Sequence[Vertex], num_workers: int) -> List[List[Vertex]]:
    """Split ``tasks`` into ``num_workers`` contiguous, equally sized blocks.

    This is the vertex-based assignment: it ignores per-task cost, so a block
    that happens to contain the high-degree hubs dominates the makespan.
    """
    if num_workers < 1:
        raise InvalidParameterError("num_workers must be positive")
    chunks: List[List[Vertex]] = [[] for _ in range(num_workers)]
    if not tasks:
        return chunks
    size, remainder = divmod(len(tasks), num_workers)
    start = 0
    for worker in range(num_workers):
        extent = size + (1 if worker < remainder else 0)
        chunks[worker] = list(tasks[start : start + extent])
        start += extent
    return chunks


def balanced_partition(
    tasks: Sequence[Vertex], weights: Dict[Vertex, float], num_workers: int
) -> List[List[Vertex]]:
    """Assign ``tasks`` to workers balancing the summed ``weights`` (LPT greedy).

    Tasks are considered in non-increasing weight order and each goes to the
    currently least-loaded worker — the classical longest-processing-time
    heuristic, whose makespan is within 4/3 of optimal.  This is the
    edge-based assignment: weights measure edge work, so worker loads are
    near-equal even under heavy degree skew.
    """
    if num_workers < 1:
        raise InvalidParameterError("num_workers must be positive")
    chunks: List[List[Vertex]] = [[] for _ in range(num_workers)]
    if not tasks:
        return chunks
    ordered = sorted(tasks, key=lambda t: -weights.get(t, 1.0))
    heap: List[Tuple[float, int]] = [(0.0, worker) for worker in range(num_workers)]
    heapq.heapify(heap)
    for task in ordered:
        load, worker = heapq.heappop(heap)
        chunks[worker].append(task)
        heapq.heappush(heap, (load + weights.get(task, 1.0), worker))
    return chunks
