"""Execution backends for the parallel engines.

Two backends are offered:

``serial``
    Chunks are executed one after another inside the current process.  This
    is the default for tests and for the deterministic speedup model (which
    measures the per-chunk work and simulates the schedule), because Python's
    per-process start-up and data-shipping overhead would otherwise dominate
    the small graphs used in the offline reproduction.

``process``
    Chunks are executed by a ``multiprocessing`` pool, demonstrating real
    parallel execution across CPU cores (the closest Python equivalent of the
    paper's OpenMP threads; the substitution is documented in DESIGN.md).
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Dict, Iterable, List, Sequence, Set, Tuple

from repro.errors import InvalidParameterError
from repro.graph.csr import CompactGraph
from repro.graph.graph import Graph, Vertex

__all__ = [
    "ParallelBackend",
    "run_chunks",
    "compute_chunk_scores",
    "run_chunks_csr",
    "compute_chunk_scores_csr",
]


class ParallelBackend(str, Enum):
    """Available execution backends for the parallel engines."""

    SERIAL = "serial"
    PROCESS = "process"


def compute_chunk_scores(
    adjacency: Dict[Vertex, Set[Vertex]], chunk: Sequence[Vertex]
) -> Dict[Vertex, float]:
    """Compute the exact ego-betweenness of every vertex in ``chunk``.

    Module-level (hence picklable) worker function shared by both backends.
    The graph is reconstructed from the plain adjacency mapping so that the
    payload shipped to worker processes contains no library objects.
    """
    from repro.core.ego_betweenness import ego_betweenness

    graph = Graph.from_adjacency(adjacency)
    return {p: ego_betweenness(graph, p) for p in chunk}


def compute_chunk_scores_csr(
    payload: Tuple[Sequence[int], Sequence[int]], chunk: Sequence[int]
) -> Dict[int, float]:
    """Compute the exact ego-betweenness of every vertex id in ``chunk``.

    Module-level (hence picklable) CSR worker function.  ``payload`` is the
    ``(indptr, indices)`` pair from :meth:`CompactGraph.arrays` — two flat
    typed arrays, far cheaper to pickle and ship than the per-vertex
    adjacency sets the hash worker receives.
    """
    from repro.core.csr_kernels import ego_betweenness_from_arrays

    indptr, indices = payload
    return ego_betweenness_from_arrays(indptr, indices, chunk)


def run_chunks_csr(
    compact: CompactGraph,
    chunks: Sequence[Sequence[int]],
    backend: ParallelBackend | str = ParallelBackend.SERIAL,
) -> Tuple[Dict[int, float], List[float]]:
    """Execute per-chunk computations on the CSR backend and merge results.

    The CSR twin of :func:`run_chunks`: chunks contain dense vertex ids and
    the returned scores are keyed by id (callers map them back to labels).
    """
    backend = ParallelBackend(backend)
    if backend is ParallelBackend.SERIAL:
        return _run_serial_csr(compact, chunks)
    if backend is ParallelBackend.PROCESS:
        return _run_process_csr(compact, chunks)
    raise InvalidParameterError(f"unknown backend {backend!r}")


def _run_serial_csr(
    compact: CompactGraph, chunks: Sequence[Sequence[int]]
) -> Tuple[Dict[int, float], List[float]]:
    import time

    from repro.core.csr_kernels import ego_betweenness_from_arrays

    indptr, indices = compact.indptr, compact.indices
    # The neighbour-set cache is shared across every chunk of the serial run.
    nbr_sets = compact.neighbor_sets()
    dense = compact.dense_adjacency()
    merged: Dict[int, float] = {}
    timings: List[float] = []
    for chunk in chunks:
        start = time.perf_counter()
        merged.update(
            ego_betweenness_from_arrays(indptr, indices, chunk, nbr_sets, dense)
        )
        timings.append(time.perf_counter() - start)
    return merged, timings


def _run_process_csr(
    compact: CompactGraph, chunks: Sequence[Sequence[int]]
) -> Tuple[Dict[int, float], List[float]]:
    return _run_process_pool(compute_chunk_scores_csr, compact.arrays(), chunks)


def _run_process_pool(
    worker: Callable, payload, chunks: Sequence[Sequence]
) -> Tuple[Dict, List[float]]:
    """Run ``worker(payload, chunk)`` over a process pool and merge results.

    Shared by the hash and CSR process backends so the fork-context
    fallback, per-result timing semantics and empty-chunk padding exist in
    exactly one copy.
    """
    import multiprocessing
    import time

    non_empty = [list(chunk) for chunk in chunks if chunk]
    if not non_empty:
        return {}, [0.0] * len(chunks)

    merged: Dict = {}
    timings: List[float] = []
    # ``fork`` keeps the payload cheap on Linux; fall back to the default
    # start method elsewhere.
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context()
    with context.Pool(processes=len(non_empty)) as pool:
        start = time.perf_counter()
        async_results = [
            pool.apply_async(worker, (payload, chunk)) for chunk in non_empty
        ]
        for result in async_results:
            merged.update(result.get())
            timings.append(time.perf_counter() - start)
    # Pad timings for empty chunks so the caller can zip them with the input.
    while len(timings) < len(chunks):
        timings.append(0.0)
    return merged, timings


def run_chunks(
    graph: Graph,
    chunks: Sequence[Sequence[Vertex]],
    backend: ParallelBackend | str = ParallelBackend.SERIAL,
) -> Tuple[Dict[Vertex, float], List[float]]:
    """Execute the per-chunk computations and merge their results.

    Returns ``(scores, per_chunk_seconds)`` where ``per_chunk_seconds[i]`` is
    the wall-clock time chunk ``i`` took (measured inside the worker for the
    serial backend; end-to-end per-task time for the process backend).  The
    per-chunk times feed the load-balance analysis of Fig. 10.
    """
    backend = ParallelBackend(backend)
    if backend is ParallelBackend.SERIAL:
        return _run_serial(graph, chunks)
    if backend is ParallelBackend.PROCESS:
        return _run_process(graph, chunks)
    raise InvalidParameterError(f"unknown backend {backend!r}")


def _run_serial(
    graph: Graph, chunks: Sequence[Sequence[Vertex]]
) -> Tuple[Dict[Vertex, float], List[float]]:
    import time

    from repro.core.ego_betweenness import ego_betweenness

    merged: Dict[Vertex, float] = {}
    timings: List[float] = []
    for chunk in chunks:
        start = time.perf_counter()
        for p in chunk:
            merged[p] = ego_betweenness(graph, p)
        timings.append(time.perf_counter() - start)
    return merged, timings


def _run_process(
    graph: Graph, chunks: Sequence[Sequence[Vertex]]
) -> Tuple[Dict[Vertex, float], List[float]]:
    return _run_process_pool(compute_chunk_scores, graph.to_adjacency(), chunks)
