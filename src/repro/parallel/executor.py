"""Execution backends for the parallel engines — one unified chunk runner.

:func:`run_chunks` is the single entry point: it executes per-chunk
ego-betweenness computations and merges the results, dispatching on the
*graph representation* it is handed.

* A :class:`~repro.graph.csr.CompactGraph` (or anything carrying a CSR
  snapshot) routes through the persistent
  :class:`~repro.parallel.runtime.ExecutionRuntime` — flat CSR arrays
  shipped to workers via shared memory, once per graph version.  The old
  per-call dict-of-sets adjacency payload is gone entirely on this path.
* A hash-set :class:`~repro.graph.graph.Graph` keeps the legacy payload
  (the adjacency mapping pickled per call) — it is the bit-identical
  oracle the CSR path is validated against, not a production path.

``backend`` selects *how* chunks execute: ``"serial"`` runs them in the
current process (tests, deterministic models), ``"process"`` on a worker
pool.  Callers that execute more than one batch should construct an
:class:`~repro.parallel.runtime.ExecutionRuntime` and pass it via
``runtime=`` so the pool and the shipped payload are reused; without one,
each call builds and tears down an ephemeral runtime (the historical
behaviour).

Migration notes
---------------
``run_chunks_csr`` is now a thin alias of :func:`run_chunks` — existing
callers keep working, new code should call :func:`run_chunks` (or better,
hold an ``ExecutionRuntime``).  ``compute_chunk_scores_csr`` remains as the
stateless one-shot worker function; persistent workers use
:class:`~repro.core.csr_kernels.CSRChunkKernel` instead.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.graph.csr import CompactGraph
from repro.graph.graph import Graph, Vertex
from repro.parallel.runtime import ExecutionRuntime, ParallelBackend

__all__ = [
    "ParallelBackend",
    "run_chunks",
    "run_chunks_csr",
    "compute_chunk_scores",
    "compute_chunk_scores_csr",
]


def compute_chunk_scores(
    adjacency: Dict[Vertex, Set[Vertex]], chunk: Sequence[Vertex]
) -> Dict[Vertex, float]:
    """Compute the exact ego-betweenness of every vertex in ``chunk``.

    Module-level (hence picklable) worker function of the legacy hash
    path.  The graph is reconstructed from the plain adjacency mapping so
    that the payload shipped to worker processes contains no library
    objects.
    """
    from repro.core.ego_betweenness import ego_betweenness

    graph = Graph.from_adjacency(adjacency)
    return {p: ego_betweenness(graph, p) for p in chunk}


def compute_chunk_scores_csr(
    payload: Tuple[Sequence[int], Sequence[int]], chunk: Sequence[int]
) -> Dict[int, float]:
    """Compute the exact ego-betweenness of every vertex id in ``chunk``.

    Stateless one-shot CSR worker: ``payload`` is the ``(indptr, indices)``
    pair from :meth:`CompactGraph.arrays`.  The persistent runtime does not
    use this — its workers keep a
    :class:`~repro.core.csr_kernels.CSRChunkKernel` per shipped graph
    version instead of rebuilding the neighbour sets per call.
    """
    from repro.core.csr_kernels import ego_betweenness_from_arrays

    indptr, indices = payload
    return ego_betweenness_from_arrays(indptr, indices, chunk)


def run_chunks(
    source: Union[Graph, CompactGraph],
    chunks: Sequence[Sequence],
    backend: "ParallelBackend | str" = ParallelBackend.SERIAL,
    runtime: Optional[ExecutionRuntime] = None,
    payload_key=None,
    task_deadline: Optional[float] = None,
    max_task_retries: Optional[int] = None,
) -> Tuple[Dict, List[float]]:
    """Execute the per-chunk computations and merge their results.

    Returns ``(scores, per_chunk_seconds)`` where ``per_chunk_seconds[i]``
    is the kernel time chunk ``i`` took (measured inside the worker).  The
    per-chunk times feed the load-balance analysis of Fig. 10.

    ``source`` decides the code path: a :class:`CompactGraph` executes on
    the :class:`ExecutionRuntime` (chunks contain dense vertex ids, scores
    are keyed by id); a hash :class:`Graph` uses the legacy adjacency
    payload (chunks contain labels, scores are keyed by label).
    ``task_deadline`` / ``max_task_retries`` configure the supervision of
    an ephemeral runtime created by this call (``None`` keeps the runtime
    defaults; a caller-supplied ``runtime`` keeps its own knobs).
    """
    backend = ParallelBackend(backend)
    if isinstance(source, CompactGraph):
        return _run_chunks_runtime(
            source, chunks, backend, runtime, payload_key,
            task_deadline=task_deadline, max_task_retries=max_task_retries,
        )
    if backend is ParallelBackend.SERIAL:
        return _run_serial_hash(source, chunks)
    merged, timings, _ = _run_process_pool(
        compute_chunk_scores, source.to_adjacency(), chunks
    )
    return merged, timings


def run_chunks_csr(
    compact: CompactGraph,
    chunks: Sequence[Sequence[int]],
    backend: "ParallelBackend | str" = ParallelBackend.SERIAL,
    runtime: Optional[ExecutionRuntime] = None,
    payload_key=None,
    task_deadline: Optional[float] = None,
    max_task_retries: Optional[int] = None,
) -> Tuple[Dict[int, float], List[float]]:
    """Compatibility alias of :func:`run_chunks` for CSR snapshots."""
    return run_chunks(
        compact, chunks, backend=backend, runtime=runtime, payload_key=payload_key,
        task_deadline=task_deadline, max_task_retries=max_task_retries,
    )


def _run_chunks_runtime(
    compact: CompactGraph,
    chunks: Sequence[Sequence[int]],
    backend: ParallelBackend,
    runtime: Optional[ExecutionRuntime],
    payload_key=None,
    task_deadline: Optional[float] = None,
    max_task_retries: Optional[int] = None,
) -> Tuple[Dict[int, float], List[float]]:
    """Execute a static chunk schedule through an (ephemeral?) runtime."""
    owns = runtime is None
    if owns:
        workers = sum(1 for chunk in chunks if chunk) or 1
        options = {}
        if task_deadline is not None:
            options["task_deadline"] = task_deadline
        if max_task_retries is not None:
            options["max_task_retries"] = max_task_retries
        runtime = ExecutionRuntime(max_workers=workers, executor=backend, **options)
    try:
        scores, batch = runtime.execute(compact, chunks=chunks, payload_key=payload_key)
        return scores, batch.chunk_seconds
    finally:
        if owns:
            runtime.close()


def _run_serial_hash(
    graph: Graph, chunks: Sequence[Sequence[Vertex]]
) -> Tuple[Dict[Vertex, float], List[float]]:
    from repro.core.ego_betweenness import ego_betweenness

    merged: Dict[Vertex, float] = {}
    timings: List[float] = []
    for chunk in chunks:
        start = time.perf_counter()
        for p in chunk:
            merged[p] = ego_betweenness(graph, p)
        timings.append(time.perf_counter() - start)
    return merged, timings


def _run_process_pool(
    worker, payload, chunks: Sequence[Sequence]
) -> Tuple[Dict, List[float], float]:
    """Run ``worker(payload, chunk)`` over a throwaway process pool.

    The legacy hash-oracle execution path: the payload is pickled to every
    worker on every call.  Returns ``(scores, per_chunk_seconds,
    setup_seconds)`` — the setup component (pool fork) is reported
    separately so callers can keep it out of compute timings.
    """
    import multiprocessing

    non_empty = [list(chunk) for chunk in chunks if chunk]
    if not non_empty:
        return {}, [0.0] * len(chunks), 0.0

    merged: Dict = {}
    timings: List[float] = []
    # ``fork`` keeps the payload cheap on Linux; fall back to the default
    # start method elsewhere.
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context()
    setup_start = time.perf_counter()
    with context.Pool(processes=len(non_empty)) as pool:
        setup_seconds = time.perf_counter() - setup_start
        start = time.perf_counter()
        async_results = [
            pool.apply_async(worker, (payload, chunk)) for chunk in non_empty
        ]
        for result in async_results:
            merged.update(result.get())
            timings.append(time.perf_counter() - start)
    # Pad timings for empty chunks so the caller can zip them with the input.
    while len(timings) < len(chunks):
        timings.append(0.0)
    return merged, timings, setup_seconds
