"""Shared serving infrastructure: worker pools, payload store, runtimes.

The paper's Section V parallelises the all-vertex ego-betweenness
computation across threads that all read one shared graph.  The Python
reproduction originally approximated that with a throwaway
``multiprocessing`` pool per call; the persistent
:class:`ExecutionRuntime` then made a *single* session fast by shipping the
CSR payload once into a long-lived pool.  This module is the next step:
the runtime is split into two shareable pieces so *many* sessions (tenants,
graphs, versions) can be served by one set of processes:

* :class:`WorkerPool` — the fork lifecycle and task queue.  A pool can be
  private to one runtime (the historical behaviour), explicitly shared
  between runtimes, or the process-global singleton returned by
  :func:`shared_worker_pool`.  Pools are reference counted: every runtime
  that attaches takes a reference, and a non-``keep_alive`` pool terminates
  its processes when the last reference is released.
* :class:`PayloadStore` — a multi-entry shared-memory table keyed by
  ``(graph_id, version)`` with refcounted eviction.  Each entry holds the
  flat CSR arrays of one graph version, materialised into a
  :mod:`multiprocessing.shared_memory` segment exactly once; workers attach
  to the segment through zero-copy ``memoryview`` casts and keep one
  :class:`~repro.core.csr_kernels.CSRChunkKernel` per entry, so tenants
  sharing a pool do not re-ship each other's graphs away.  An entry is
  evicted (segment unlinked) when the last runtime using it releases it.

:class:`ExecutionRuntime` composes the two: by default it owns a private
pool and store (exactly the pre-split semantics — nothing changes for
standalone callers), or it can be constructed with ``pool=`` / ``store=``
to join shared infrastructure (what the serving gateway does for its
tenants).

Execution offers two reductions:

* :meth:`ExecutionRuntime.execute` — score chunks, merge the full
  ``{id: score}`` map in ascending id order (bit-identical to the serial
  kernels for every executor/schedule/worker count).
* :meth:`ExecutionRuntime.execute_top_k` — worker-side result reduction:
  every chunk task returns its bounded top-k candidate set (``k`` entries
  plus any ties at the chunk threshold) instead of every score, and the
  parent merges the per-chunk candidates in canonical (ascending id)
  order.  The retained entries are provably identical to offering every
  score to one accumulator in ascending id order — i.e. bit-identical to
  the serial naive ranking, threshold ties included — while the result
  traffic shrinks from ``O(n)`` scores to ``O(tasks × k + ties)``
  candidates.

Teardown is exception-safe at every layer: pools, stores and individual
shared-memory payloads each register a ``weakref.finalize`` guard (which
Python also runs at interpreter exit), and an ``atexit`` sweep unlinks any
segment that is still alive — a CLI or test crash mid-batch can no longer
leak ``multiprocessing.shared_memory`` segments.

Examples
--------
>>> from repro.graph.csr import CompactGraph
>>> cg = CompactGraph.from_edges([(0, 1), (0, 2), (1, 2), (1, 3)])
>>> with ExecutionRuntime(max_workers=2, executor="serial") as runtime:
...     scores, batch = runtime.execute(cg)
...     again, _ = runtime.execute(cg)
>>> scores == again and sorted(scores) == [0, 1, 2, 3]
True
>>> runtime.stats().payload_ships  # one ship for both batches
1
"""

from __future__ import annotations

import atexit
import threading
import time
import warnings
import zlib
from array import array
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro import faults as _faults
from repro.errors import (
    InjectedFaultError,
    InvalidParameterError,
    PayloadEvictedError,
    PayloadIntegrityError,
    PoolBrokenError,
    PoolStateError,
)
from repro.graph.csr import CompactGraph

__all__ = [
    "ParallelBackend",
    "WorkerPool",
    "PayloadStore",
    "PayloadKey",
    "ShardPayloadKey",
    "ExecutionRuntime",
    "RuntimeStats",
    "BatchStats",
    "shared_worker_pool",
    "shared_payload_store",
    "set_worker_cache_limit",
    "DEFAULT_OVERSUBSCRIBE",
    "DEFAULT_TASK_DEADLINE",
    "DEFAULT_MAX_TASK_RETRIES",
]

#: Chunks per worker produced by the dynamic schedule: small enough that an
#: unlucky worker never sits on more than ``1/oversubscribe`` of the work,
#: large enough that per-task submission overhead stays negligible.
DEFAULT_OVERSUBSCRIBE = 4

#: Default per-task deadline (seconds).  A chunk task that has not produced
#: a result this long after submission is presumed lost (hung worker,
#: silent death the pid check missed) and is resubmitted.  Chunk kernels at
#: any realistic chunking are sub-second, so the default only fires on
#: genuine hangs; ``task_deadline=None`` disables the straggler cutoff
#: (worker-death detection stays on).
DEFAULT_TASK_DEADLINE = 60.0

#: Default per-task retry budget before a chunk is quarantined and computed
#: serially in the parent (poison-task isolation).
DEFAULT_MAX_TASK_RETRIES = 2

#: Pool respawns one batch may attempt before giving up with
#: :class:`PoolBrokenError`.
_MAX_RESPAWNS_PER_BATCH = 3

#: Fixed-width signed 64-bit array typecode used for the shipped buffers —
#: one definition so parent writes and worker casts can never disagree.
_TYPECODE = "q"
_ITEMSIZE = array(_TYPECODE).itemsize

#: A payload-store key: ``(graph_id, version)``.  Sessions derive it from
#: their stable graph id and their topology version counter; anonymous
#: snapshots get a store-assigned id.
PayloadKey = Tuple[str, int]

#: A sharded payload-store key: ``(graph_id, shard, version)``.  One huge
#: graph split by a :class:`~repro.graph.partition.ShardPlan` ships each
#: halo-augmented shard subgraph as its own resident entry; the version
#: component is the *shard's* rebuild counter, so a mutation re-keys (and
#: re-ships) only the shards it touched.  Both key shapes coexist in one
#: :class:`PayloadStore` — the store never interprets keys beyond equality
#: (rendering aside).
ShardPayloadKey = Tuple[str, int, int]


class ParallelBackend(str, Enum):
    """Available execution backends for the runtime and the engines."""

    SERIAL = "serial"
    PROCESS = "process"


@dataclass(frozen=True)
class BatchStats:
    """Execution accounting for one runtime batch.

    Attributes
    ----------
    num_tasks:
        Number of (non-empty) chunks executed.
    schedule:
        ``"static"`` (caller-provided chunks) or ``"dynamic"`` (runtime
        chunking + shared-queue self-scheduling).
    shipped:
        Whether this batch had to ship the graph payload (first batch on a
        new ``(graph_id, version)`` key).
    pool_started:
        Whether this batch paid the worker-pool start-up (first process
        batch on a not-yet-started pool).
    setup_seconds:
        Pool start-up plus payload-shipping time of this batch (0.0 for a
        warm runtime).
    compute_seconds:
        Wall-clock time of the chunk execution itself.
    chunk_seconds:
        Per-chunk kernel seconds, aligned with the executed chunks (static
        schedules: aligned with the caller's chunk list, empty chunks
        report 0.0).
    kind:
        ``"scores"`` (full merged map) or ``"top_k"`` (worker-side bounded
        reduction).
    shards:
        Number of shard payloads this batch fanned out across (0 for the
        single-payload path).
    """

    num_tasks: int
    schedule: str
    shipped: bool
    pool_started: bool
    setup_seconds: float
    compute_seconds: float
    chunk_seconds: List[float] = field(default_factory=list)
    kind: str = "scores"
    shards: int = 0


@dataclass
class RuntimeStats:
    """Cumulative accounting of one :class:`ExecutionRuntime`.

    Attributes
    ----------
    executor:
        ``"serial"`` or ``"process"``.
    max_workers:
        The pool size (process executor) / nominal parallelism.
    payload_ships:
        Payload materialisations *this runtime triggered* — exactly once
        per distinct ``(graph_id, version)`` key it executed on (a key
        another tenant already shipped into a shared store is a hit, not a
        ship).
    payload_bytes:
        Size of the runtime's currently attached payload in bytes.
    payload_bytes_shipped:
        Cumulative bytes this runtime shipped into the store (capacity
        planning: transport traffic caused by this runtime).
    resident_payloads / resident_bytes:
        Point-in-time size of the backing :class:`PayloadStore` (all
        tenants' entries, refreshed on every batch and ``stats()`` call).
    payload_evictions:
        Entries the backing store has evicted (refcount reached zero).
    payloads:
        Cumulative bytes shipped per ``(graph_id, version)`` key, rendered
        as ``"graph_id@vN"`` strings (store-wide).
    pool_launches:
        Worker-pool starts this runtime paid for (0 when a shared pool was
        already running).
    pool_reuses:
        Process batches served by an already-running pool.
    batches:
        Total execution batches run.
    tasks:
        Total chunks executed.
    setup_seconds / compute_seconds:
        Cumulative split of where the time went: pool start-up + payload
        shipping vs kernel execution.
    worker_deaths:
        Worker processes this runtime observed vanishing mid-batch.
    respawns:
        Full pool respawns this runtime triggered (broken-pool recovery).
    task_retries:
        Chunk tasks resubmitted after a worker death, deadline miss,
        injected fault or integrity failure.
    deadline_misses:
        Tasks that overran ``task_deadline`` and were resubmitted.
    quarantined_tasks:
        Chunks that exhausted their retry budget and were isolated to
        serial in-parent execution (poison-task quarantine).
    integrity_failures:
        Torn/corrupt shared-memory payloads detected on worker attach
        (each one triggers an unlink + re-ship).
    kernel:
        The kernel tier this runtime asks its chunk kernels to serve
        (``"python"`` or ``"numpy"`` — already resolved, never
        ``"auto"``).
    kernel_chunks:
        Chunks actually served per tier.  A ``"numpy"`` runtime whose
        workers demoted (vectorized path failed mid-batch) shows the
        demoted chunks under ``"python"`` here — the tier *requested* and
        the tier *served* are reported separately on purpose.
    kernel_fallbacks:
        Vectorized-kernel demotions observed across workers: each one is
        a worker-side :class:`~repro.core.csr_kernels.CSRChunkKernel`
        that permanently dropped from ``numpy`` to ``python``.
    sharded_batches:
        Batches executed through the sharded fan-out
        (:meth:`ExecutionRuntime.execute_sharded` /
        :meth:`~ExecutionRuntime.execute_top_k_sharded`).
    shard_chunks:
        Cumulative chunks executed per shard index (string-keyed for the
        JSON payload) — the load-balance readout of the shard plan.
    last_batch:
        The most recent :class:`BatchStats`, or ``None``.
    """

    executor: str
    max_workers: int
    payload_ships: int = 0
    payload_bytes: int = 0
    payload_bytes_shipped: int = 0
    resident_payloads: int = 0
    resident_bytes: int = 0
    payload_evictions: int = 0
    payloads: Dict[str, int] = field(default_factory=dict)
    pool_launches: int = 0
    pool_reuses: int = 0
    batches: int = 0
    tasks: int = 0
    setup_seconds: float = 0.0
    compute_seconds: float = 0.0
    worker_deaths: int = 0
    respawns: int = 0
    task_retries: int = 0
    deadline_misses: int = 0
    quarantined_tasks: int = 0
    integrity_failures: int = 0
    kernel: str = "python"
    kernel_chunks: Dict[str, int] = field(
        default_factory=lambda: {"python": 0, "numpy": 0}
    )
    kernel_fallbacks: int = 0
    sharded_batches: int = 0
    shard_chunks: Dict[str, int] = field(default_factory=dict)
    last_batch: Optional[BatchStats] = None

    def as_dict(self) -> Dict[str, Any]:
        """Return a JSON-friendly dict (the CLI/benchmark payload shape)."""
        payload: Dict[str, Any] = {
            "executor": self.executor,
            "max_workers": self.max_workers,
            "payload_ships": self.payload_ships,
            "payload_bytes": self.payload_bytes,
            "payload_bytes_shipped": self.payload_bytes_shipped,
            "resident_payloads": self.resident_payloads,
            "resident_bytes": self.resident_bytes,
            "payload_evictions": self.payload_evictions,
            "payloads": dict(self.payloads),
            "pool_launches": self.pool_launches,
            "pool_reuses": self.pool_reuses,
            "batches": self.batches,
            "tasks": self.tasks,
            "setup_seconds": self.setup_seconds,
            "compute_seconds": self.compute_seconds,
            "worker_deaths": self.worker_deaths,
            "respawns": self.respawns,
            "task_retries": self.task_retries,
            "deadline_misses": self.deadline_misses,
            "quarantined_tasks": self.quarantined_tasks,
            "integrity_failures": self.integrity_failures,
            "kernel": self.kernel,
            "kernel_chunks": dict(self.kernel_chunks),
            "kernel_fallbacks": self.kernel_fallbacks,
        }
        if self.sharded_batches or self.shard_chunks:
            payload["sharded_batches"] = self.sharded_batches
            payload["shard_chunks"] = dict(self.shard_chunks)
        if self.last_batch is not None:
            payload["last_batch"] = {
                "num_tasks": self.last_batch.num_tasks,
                "schedule": self.last_batch.schedule,
                "kind": self.last_batch.kind,
                "shipped": self.last_batch.shipped,
                "pool_started": self.last_batch.pool_started,
                "setup_seconds": self.last_batch.setup_seconds,
                "compute_seconds": self.last_batch.compute_seconds,
            }
            if self.last_batch.shards:
                payload["last_batch"]["shards"] = self.last_batch.shards
        return payload


# ----------------------------------------------------------------------
# Crash-safe shared-memory bookkeeping
# ----------------------------------------------------------------------
#: Every live shared-memory segment created by this process, swept by the
#: ``atexit`` guard below.  ``weakref.finalize`` already covers the GC and
#: normal-exit paths per payload; the sweep is the belt-and-braces pass for
#: anything still registered when the interpreter shuts down.
_LIVE_SEGMENTS: Dict[str, Any] = {}
_SEGMENTS_LOCK = threading.Lock()


def _unlink_segment(name: str) -> None:
    """Close and unlink one tracked segment (idempotent, never raises)."""
    with _SEGMENTS_LOCK:
        shm = _LIVE_SEGMENTS.pop(name, None)
    if shm is None:
        return
    try:
        shm.close()
        shm.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - already gone
        pass


@atexit.register
def _sweep_segments() -> None:
    for name in list(_LIVE_SEGMENTS):
        # A segment reaching the atexit sweep means some runtime / payload
        # store was never closed — the warning names it so leaked-segment
        # bugs surface in test output instead of passing silently.
        warnings.warn(
            f"shared-memory segment {name!r} was still live at interpreter "
            "exit and had to be unlinked by the atexit sweep; close the "
            "owning ExecutionRuntime/PayloadStore (or use it as a context "
            "manager) to release transport segments deterministically",
            ResourceWarning,
            stacklevel=2,
        )
        _unlink_segment(name)


# ----------------------------------------------------------------------
# Parent-side transport: one shared-memory segment per (graph_id, version)
# ----------------------------------------------------------------------
#: Integrity header prepended to every shipped segment: four int64 words —
#: ``[magic, len(indptr), len(indices), adler32(data region)]``.  Workers
#: verify all four on attach, so a torn or corrupted ship is detected and
#: re-shipped instead of being cast and dereferenced.
_HEADER_WORDS = 4
_HEADER_BYTES = _HEADER_WORDS * _ITEMSIZE
_PAYLOAD_MAGIC = 0x45474F4257  # "EGOBW"


class _ShippedPayload:
    """The CSR arrays of one graph version, materialised in shared memory.

    Layout: a four-word integrity header (magic, array lengths, checksum),
    then ``indptr`` (``n + 1`` int64) immediately followed by ``indices``
    (``2m`` int64).  ``meta`` is the tiny picklable handle shipped with
    every task: ``(segment_name, len(indptr), len(indices))``.

    Creation is exception-safe: the segment registers itself with the
    module's live-segment table *before* the arrays are written, and a
    ``weakref.finalize`` guard unlinks it if the payload is garbage
    collected (or the interpreter exits) without :meth:`close`.  The
    checksum is written *after* the data region, so a parent that dies
    mid-write leaves a header that can never verify.
    """

    __slots__ = ("shm", "meta", "nbytes", "_finalizer", "__weakref__")

    def __init__(self, compact: CompactGraph) -> None:
        import weakref
        from multiprocessing import shared_memory

        indptr = array(_TYPECODE, compact.indptr)
        indices = array(_TYPECODE, compact.indices)
        ptr_bytes = len(indptr) * _ITEMSIZE
        self.nbytes = ptr_bytes + len(indices) * _ITEMSIZE
        total_bytes = _HEADER_BYTES + self.nbytes
        self.shm = shared_memory.SharedMemory(create=True, size=max(total_bytes, 1))
        with _SEGMENTS_LOCK:
            _LIVE_SEGMENTS[self.shm.name] = self.shm
        self._finalizer = weakref.finalize(self, _unlink_segment, self.shm.name)
        try:
            buf = self.shm.buf
            data_end = _HEADER_BYTES + self.nbytes
            buf[_HEADER_BYTES : _HEADER_BYTES + ptr_bytes] = indptr.tobytes()
            if indices:
                buf[_HEADER_BYTES + ptr_bytes : data_end] = indices.tobytes()
            checksum = zlib.adler32(buf[_HEADER_BYTES:data_end])
            header = array(
                _TYPECODE, [_PAYLOAD_MAGIC, len(indptr), len(indices), checksum]
            )
            buf[:_HEADER_BYTES] = header.tobytes()
        except BaseException:
            self.close()
            raise
        self.meta = (self.shm.name, len(indptr), len(indices))

    def corrupt_header(self) -> None:
        """Flip checksum bits in place — a simulated torn ship.

        Fault-injection hook (see :mod:`repro.faults`): the next worker
        attach fails verification exactly as it would for a real torn
        write, driving the detect → unlink → re-ship recovery path.
        """
        header = memoryview(self.shm.buf)[:_HEADER_BYTES].cast(_TYPECODE)
        try:
            header[3] ^= 0x5A5A5A5A
        finally:
            header.release()

    def close(self) -> None:
        self._finalizer.detach()
        _unlink_segment(self.shm.name)


# ----------------------------------------------------------------------
# Worker-side state: attach once per payload key, score many chunks
# ----------------------------------------------------------------------
class _AttachedGraph:
    """A worker's zero-copy view of one shipped graph version.

    Attaching maps the shared segment and casts the two array regions as
    ``memoryview``\\ s — no deserialisation, no copy of the adjacency — then
    builds the process-local :class:`~repro.core.csr_kernels.CSRChunkKernel`
    (neighbour sets, dense bitmap) once.  Higher kernel tiers attach
    lazily through :meth:`kernel_for` and share those derived structures
    — the numpy tier wraps ``np.frombuffer`` views around the *same*
    segment bytes, so negotiating a tier ships nothing extra.  ``close``
    releases the views before closing the mapping, in that order, or
    ``mmap`` refuses to unmap.
    """

    __slots__ = ("shm", "kernel", "tier_kernels", "_views")

    def __init__(self, meta: Tuple[str, int, int]) -> None:
        from multiprocessing import shared_memory

        from repro.core.csr_kernels import CSRChunkKernel

        name, ptr_len, idx_len = meta
        self.shm = shared_memory.SharedMemory(name=name)
        views: List[memoryview] = []
        try:
            whole = memoryview(self.shm.buf)
            views.append(whole)
            self._verify(whole, name, ptr_len, idx_len)
            ptr_start = _HEADER_BYTES
            ptr_bytes = ptr_len * _ITEMSIZE
            indptr = whole[ptr_start : ptr_start + ptr_bytes].cast(_TYPECODE)
            views.append(indptr)
            indices = whole[
                ptr_start + ptr_bytes : ptr_start + ptr_bytes + idx_len * _ITEMSIZE
            ].cast(_TYPECODE)
            views.append(indices)
            self.kernel = CSRChunkKernel(indptr, indices)
        except BaseException:
            for view in reversed(views):
                view.release()
            self.shm.close()
            raise
        self.tier_kernels: Dict[str, Any] = {}
        self._views = (indices, indptr, whole)

    def kernel_for(self, tier: str):
        """The chunk kernel serving ``tier`` (lazily built per tier).

        Non-python tiers reuse the base kernel's neighbour sets and dense
        bitmap — only the tier dispatch state is new, and the numpy tier's
        array views alias the already-attached segment (zero-copy).
        """
        if tier == "python":
            return self.kernel
        kernel = self.tier_kernels.get(tier)
        if kernel is None:
            from repro.core.csr_kernels import CSRChunkKernel

            base = self.kernel
            kernel = CSRChunkKernel(
                base.indptr,
                base.indices,
                build_dense=False,
                kernel=tier,
                nbr_sets=base.nbr_sets,
                dense=base.dense,
            )
            self.tier_kernels[tier] = kernel
        return kernel

    @staticmethod
    def _verify(whole: memoryview, name: str, ptr_len: int, idx_len: int) -> None:
        """Check the integrity header against the task meta and the data.

        A mismatch means the segment was torn mid-write or corrupted in
        place; raising (picklable) :class:`PayloadIntegrityError` back to
        the parent triggers the unlink → re-ship → resubmit recovery.
        """
        header = whole[:_HEADER_BYTES].cast(_TYPECODE)
        try:
            magic, h_ptr, h_idx, checksum = header[0], header[1], header[2], header[3]
        finally:
            header.release()
        if magic != _PAYLOAD_MAGIC or h_ptr != ptr_len or h_idx != idx_len:
            raise PayloadIntegrityError(
                f"payload segment {name!r} header mismatch: "
                f"magic={magic:#x} lengths=({h_ptr}, {h_idx}), "
                f"expected magic={_PAYLOAD_MAGIC:#x} lengths=({ptr_len}, {idx_len})"
            )
        data_end = _HEADER_BYTES + (ptr_len + idx_len) * _ITEMSIZE
        data = whole[_HEADER_BYTES:data_end]
        try:
            actual = zlib.adler32(data)
        finally:
            data.release()
        if actual != checksum:
            raise PayloadIntegrityError(
                f"payload segment {name!r} checksum mismatch "
                f"(stored {checksum:#x}, computed {actual:#x}): torn ship"
            )

    def close(self) -> None:
        self.kernel = None
        self.tier_kernels = {}
        for view in self._views:
            view.release()
        self._views = ()
        self.shm.close()


#: Process-local LRU of attached graph versions, keyed by segment name.
#: Sized for multi-tenant pools: one kernel per resident payload key, so
#: several tenants' batches interleave without re-attaching (the eviction
#: only matters when more than ``_WORKER_CACHE_LIMIT`` graphs are live).
#: The historical default of 8 starves N-shard × multi-tenant interleaving
#: — every sweep over a 16-shard graph would thrash the cache — so the
#: limit is tunable: the ``REPRO_WORKER_CACHE_LIMIT`` environment variable
#: at import, :func:`set_worker_cache_limit` at runtime, and
#: ``WorkerPool(worker_cache_limit=…)`` per pool (applied in each worker's
#: initializer at fork).
_WORKER_CACHE: Dict[str, _AttachedGraph] = {}
_DEFAULT_WORKER_CACHE_LIMIT = 8


def _env_cache_limit(name: str, default: int) -> int:
    """Read a positive integer cache limit from the environment."""
    import os

    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value >= 1 else default


_WORKER_CACHE_LIMIT = _env_cache_limit(
    "REPRO_WORKER_CACHE_LIMIT", _DEFAULT_WORKER_CACHE_LIMIT
)


def set_worker_cache_limit(limit: Optional[int] = None) -> int:
    """Resize this process's attached-payload LRU; return the new limit.

    ``None`` re-reads ``REPRO_WORKER_CACHE_LIMIT`` (falling back to the
    built-in default of 8).  Shrinking evicts (closes) the
    least-recently-used attachments immediately.  Worker processes apply
    their pool's configured limit in the fork initializer; calling this in
    the parent affects only parent-side attachments.
    """
    global _WORKER_CACHE_LIMIT
    if limit is None:
        limit = _env_cache_limit(
            "REPRO_WORKER_CACHE_LIMIT", _DEFAULT_WORKER_CACHE_LIMIT
        )
    if limit < 1:
        raise InvalidParameterError("worker cache limit must be >= 1")
    _WORKER_CACHE_LIMIT = limit
    while len(_WORKER_CACHE) > _WORKER_CACHE_LIMIT:
        _WORKER_CACHE.pop(next(iter(_WORKER_CACHE))).close()
    return _WORKER_CACHE_LIMIT


def _init_worker(
    worker_cache_limit: Optional[int] = None,
    neighbor_cache_limit: Optional[int] = None,
) -> None:
    """Pool initializer: apply per-pool cache limits in each worker.

    Runs in every worker process at fork (and under spawn, where module
    globals are re-imported rather than inherited), so a pool sized for a
    16-shard graph keeps all 16 attachments resident.
    """
    if worker_cache_limit is not None:
        set_worker_cache_limit(worker_cache_limit)
    if neighbor_cache_limit is not None:
        from repro.core.csr_kernels import set_neighbor_sets_cache_limit

        set_neighbor_sets_cache_limit(neighbor_cache_limit)


def _attached(meta: Tuple[str, int, int]) -> _AttachedGraph:
    entry = _WORKER_CACHE.pop(meta[0], None)
    if entry is None:
        while len(_WORKER_CACHE) >= _WORKER_CACHE_LIMIT:
            _WORKER_CACHE.pop(next(iter(_WORKER_CACHE))).close()
        entry = _AttachedGraph(meta)
    # Re-insert (hit or miss) so iteration order is least-recently-used
    # first and hot tenants never get evicted by a one-off batch.
    _WORKER_CACHE[meta[0]] = entry
    return entry


def _decode_ids(spec) -> Iterable[int]:
    """Decode a task id spec — ``("r", lo, hi)`` range or ``("l", ids)``."""
    if spec[0] == "r":
        return range(spec[1], spec[2])
    return spec[1]


def _encode_ids(chunk: Sequence[int]):
    """Encode a chunk compactly: contiguous ascending runs ship as ranges."""
    if chunk and len(chunk) == chunk[-1] - chunk[0] + 1:
        lo = chunk[0]
        if all(chunk[i] == lo + i for i in range(len(chunk))):
            return ("r", lo, chunk[-1] + 1)
    return ("l", list(chunk))


def _serve_chunk(kernel, method: str, *args) -> Tuple[Any, float, Tuple[str, int]]:
    """Run one chunk through ``kernel`` and observe which tier served it.

    Returns ``(payload, seconds, (tier_served, fallback_delta))`` — the
    tier is read off the kernel's own per-tier chunk counters, so a chunk
    that demoted mid-call (vectorized failure → python retry) reports the
    tier that actually produced the result plus the demotion it cost.
    """
    before_numpy = kernel.chunks_by_tier["numpy"]
    before_falls = kernel.kernel_fallbacks
    start = time.perf_counter()
    payload = getattr(kernel, method)(*args)
    seconds = time.perf_counter() - start
    served = "numpy" if kernel.chunks_by_tier["numpy"] > before_numpy else "python"
    return payload, seconds, (served, kernel.kernel_fallbacks - before_falls)


def _score_task(
    meta: Tuple[str, int, int], index: int, spec, tier: str = "python", fault=None
):
    """Pool task: score one chunk against the worker's attached graph.

    ``tier`` selects the negotiated kernel tier (resolved parent-side,
    never ``"auto"``).  ``fault`` is the action drawn parent-side by the
    fault-injection harness (``None`` outside chaos runs) and is
    performed before the kernel touches the payload.
    """
    _faults.perform(fault)
    kernel = _attached(meta).kernel_for(tier)
    scores, seconds, kinfo = _serve_chunk(kernel, "score_chunk", _decode_ids(spec))
    return index, scores, seconds, kinfo


def _topk_task(
    meta: Tuple[str, int, int],
    index: int,
    spec,
    k: int,
    tier: str = "python",
    fault=None,
):
    """Pool task: return the chunk's top-k candidates, not scores.

    The worker-side reduction: ``k`` ``(id, score)`` entries plus any ties
    at the chunk threshold leave the worker, in ascending id order,
    instead of one score per chunk id.
    """
    _faults.perform(fault)
    kernel = _attached(meta).kernel_for(tier)
    entries, seconds, kinfo = _serve_chunk(kernel, "top_chunk", _decode_ids(spec), k)
    return index, entries, seconds, kinfo


# ----------------------------------------------------------------------
# WorkerPool: fork lifecycle + task queue, privately owned or shared
# ----------------------------------------------------------------------
def _terminate_pool_state(state: Dict[str, Any]) -> None:
    """Tear a pool's processes down (close/GC/exit path; never raises)."""
    pool = state.pop("pool", None)
    state["pool"] = None
    if pool is not None:
        try:
            pool.terminate()
            pool.join()
        except Exception:  # pragma: no cover - interpreter-exit races
            pass


class WorkerPool:
    """A reference-counted ``multiprocessing`` fork pool.

    One pool serves any number of :class:`ExecutionRuntime`\\ s (and hence
    any number of sessions/tenants): the processes fork lazily on the first
    :meth:`ensure_started`, tasks from every attached runtime share the
    pool's task queue (self-scheduling work stealing across tenants), and
    the processes terminate when the last reference is released — unless
    the pool was created with ``keep_alive=True`` (the process-global
    singleton of :func:`shared_worker_pool`), in which case it survives
    individual tenants and is torn down at interpreter exit.

    The pool is *supervised*: it tracks the pids of its fork workers, so
    :meth:`check_workers` can report deaths (``mp.Pool``'s maintenance
    thread replaces dead processes, but their in-flight tasks are lost —
    the supervising runtime resubmits them), and :meth:`respawn` replaces a
    broken pool wholesale with bounded exponential backoff between
    consecutive respawns.

    Parameters
    ----------
    max_workers:
        Pool size (default ``os.cpu_count()``).
    keep_alive:
        Keep the processes running after the refcount drops to zero.
    respawn_backoff / max_respawn_backoff:
        Exponential-backoff window between consecutive :meth:`respawn`
        calls: the first respawn is immediate, later ones sleep
        ``respawn_backoff × 2^n`` capped at ``max_respawn_backoff``.  The
        runtime resets the window after every healthy batch.
    worker_cache_limit / neighbor_cache_limit:
        Per-worker LRU capacities, applied in each worker's initializer at
        fork: the attached-payload cache (:func:`set_worker_cache_limit`)
        and the kernel neighbour-set cache
        (:func:`~repro.core.csr_kernels.set_neighbor_sets_cache_limit`).
        ``None`` (the default) leaves each worker on its environment-driven
        default — size these for N-shard × multi-tenant pools, where more
        than 8 payload keys interleave per sweep.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        keep_alive: bool = False,
        respawn_backoff: float = 0.05,
        max_respawn_backoff: float = 2.0,
        worker_cache_limit: Optional[int] = None,
        neighbor_cache_limit: Optional[int] = None,
    ) -> None:
        import os
        import weakref

        if max_workers is not None and max_workers < 1:
            raise InvalidParameterError("max_workers must be positive")
        if respawn_backoff < 0 or max_respawn_backoff < 0:
            raise InvalidParameterError("respawn backoff values must be >= 0")
        if worker_cache_limit is not None and worker_cache_limit < 1:
            raise InvalidParameterError("worker_cache_limit must be >= 1 or None")
        if neighbor_cache_limit is not None and neighbor_cache_limit < 1:
            raise InvalidParameterError("neighbor_cache_limit must be >= 1 or None")
        self.max_workers = max_workers or os.cpu_count() or 1
        self.keep_alive = keep_alive
        self.worker_cache_limit = worker_cache_limit
        self.neighbor_cache_limit = neighbor_cache_limit
        self.respawn_backoff = respawn_backoff
        self.max_respawn_backoff = max_respawn_backoff
        self.launches = 0
        self.respawns = 0
        self.worker_deaths = 0
        self._refs = 0
        self._closed = False
        self._next_backoff = 0.0
        self._known_pids: set = set()
        self._lock = threading.Lock()
        # Mutable holder shared with the GC finaliser: the finaliser must
        # not keep ``self`` alive, yet must see the *current* pool.
        self._state: Dict[str, Any] = {"pool": None}
        self._finalizer = weakref.finalize(self, _terminate_pool_state, self._state)

    @property
    def started(self) -> bool:
        """``True`` while worker processes are running."""
        return self._state["pool"] is not None

    @property
    def closed(self) -> bool:
        """``True`` once the pool has been shut down for good."""
        return self._closed

    @property
    def state(self) -> str:
        """Lifecycle state name: ``"new"``, ``"running"`` or ``"closed"``."""
        if self._closed:
            return "closed"
        return "running" if self.started else "new"

    @property
    def references(self) -> int:
        """Number of runtimes currently attached."""
        return self._refs

    def acquire(self) -> "WorkerPool":
        """Take a reference (one per attached runtime); returns ``self``."""
        with self._lock:
            if self._closed:
                raise InvalidParameterError("this WorkerPool has been shut down")
            self._refs += 1
        return self

    def release(self) -> None:
        """Drop a reference; terminate a non-``keep_alive`` pool at zero."""
        with self._lock:
            self._refs = max(0, self._refs - 1)
            if self._refs == 0 and not self.keep_alive:
                self._shutdown_locked()

    def ensure_started(self) -> bool:
        """Fork the worker processes if needed; ``True`` when this call did."""
        with self._lock:
            if self._closed:
                raise InvalidParameterError("this WorkerPool has been shut down")
            if self._state["pool"] is not None:
                return False
            self._fork_locked()
            return True

    def _fork_locked(self) -> None:
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        if self.worker_cache_limit is None and self.neighbor_cache_limit is None:
            pool = context.Pool(processes=self.max_workers)
        else:
            pool = context.Pool(
                processes=self.max_workers,
                initializer=_init_worker,
                initargs=(self.worker_cache_limit, self.neighbor_cache_limit),
            )
        self._state["pool"] = pool
        self._known_pids = self._live_pids(pool)
        self.launches += 1

    @staticmethod
    def _live_pids(pool) -> set:
        return {
            proc.pid
            for proc in list(getattr(pool, "_pool", None) or [])
            if proc.exitcode is None
        }

    def worker_pids(self) -> set:
        """Pids of the currently live worker processes (empty if not started)."""
        with self._lock:
            pool = self._state["pool"]
            return self._live_pids(pool) if pool is not None else set()

    def check_workers(self) -> int:
        """Count workers that vanished since the last check.

        ``mp.Pool``'s maintenance thread replaces a dead process, but any
        task it was executing is silently lost — the caller must resubmit
        in-flight work whenever this returns non-zero.  Each death is
        reported exactly once (replacement pids are folded into the known
        set).
        """
        with self._lock:
            pool = self._state["pool"]
            if pool is None:
                return 0
            live = self._live_pids(pool)
            dead = self._known_pids - live
            self._known_pids = live
            if dead:
                self.worker_deaths += len(dead)
            return len(dead)

    def respawn(self) -> float:
        """Replace a broken pool with freshly forked processes.

        Sleeps the current backoff window first (0 on the first respawn,
        doubling up to ``max_respawn_backoff`` on consecutive ones — call
        :meth:`reset_backoff` after a healthy batch), then terminates
        whatever processes remain and forks a new pool.  Returns the delay
        slept.  Raises :class:`PoolStateError` on a closed pool.
        """
        with self._lock:
            if self._closed:
                raise PoolStateError(
                    "cannot respawn a WorkerPool in state 'closed'"
                )
            delay = self._next_backoff
            self._next_backoff = min(
                max(delay * 2, self.respawn_backoff), self.max_respawn_backoff
            )
        if delay:
            time.sleep(delay)
        with self._lock:
            if self._closed:
                raise PoolStateError(
                    "cannot respawn a WorkerPool in state 'closed'"
                )
            _terminate_pool_state(self._state)
            self._fork_locked()
            self.respawns += 1
        return delay

    def reset_backoff(self) -> None:
        """Arm the next respawn to fire immediately (healthy-batch signal)."""
        with self._lock:
            self._next_backoff = 0.0

    def submit(self, task, args: tuple):
        """Submit ``task(*args)`` to the pool's shared queue (async result).

        Raises :class:`PoolStateError` — naming the pool state — on a pool
        that is closed or was never started, and :class:`PoolBrokenError`
        when the underlying ``mp.Pool`` refuses the task (torn down or
        broken mid-flight; callers respawn and retry).
        """
        pool = self._state["pool"]
        if pool is None:
            raise PoolStateError(
                f"WorkerPool.submit on a pool in state {self.state!r}: "
                + (
                    "the pool has been shut down and cannot accept tasks"
                    if self._closed
                    else "no worker processes are running — call ensure_started() first"
                )
            )
        try:
            return pool.apply_async(task, args)
        except Exception as exc:
            raise PoolBrokenError(
                f"WorkerPool.submit failed on a broken pool: {exc}"
            ) from exc

    def close(self) -> None:
        """Terminate the processes now, whatever the refcount (idempotent)."""
        with self._lock:
            self._shutdown_locked()

    def _shutdown_locked(self) -> None:
        self._closed = True
        self._finalizer.detach()
        _terminate_pool_state(self._state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkerPool(max_workers={self.max_workers}, started={self.started}, "
            f"refs={self._refs}, keep_alive={self.keep_alive})"
        )


_SHARED_POOL: Optional[WorkerPool] = None
_SHARED_STORE: Optional["PayloadStore"] = None
_SHARED_LOCK = threading.Lock()


def shared_worker_pool(max_workers: Optional[int] = None) -> WorkerPool:
    """The process-global :class:`WorkerPool` (created on first call).

    ``max_workers`` sizes the pool only when this call creates it; later
    callers share the existing processes whatever they ask for.  The pool
    is ``keep_alive`` — it survives every individual runtime/session and is
    terminated by its exit guard when the interpreter shuts down (or by
    :meth:`WorkerPool.close`, after which the next call creates a fresh
    one).
    """
    global _SHARED_POOL
    with _SHARED_LOCK:
        if _SHARED_POOL is None or _SHARED_POOL.closed:
            _SHARED_POOL = WorkerPool(max_workers, keep_alive=True)
        return _SHARED_POOL


def shared_payload_store() -> "PayloadStore":
    """The process-global :class:`PayloadStore` (created on first call)."""
    global _SHARED_STORE
    with _SHARED_LOCK:
        if _SHARED_STORE is None or _SHARED_STORE.closed:
            _SHARED_STORE = PayloadStore()
        return _SHARED_STORE


# ----------------------------------------------------------------------
# PayloadStore: the multi-entry shared-memory table
# ----------------------------------------------------------------------
def _render_key(key: Tuple) -> str:
    """Render a store key for stats: ``gid@vN`` or ``gid#sS@vN`` (sharded)."""
    if len(key) == 3:
        graph_id, shard, version = key
        return f"{graph_id}#s{shard}@v{version}"
    graph_id, version = key
    return f"{graph_id}@v{version}"


class _StoreEntry:
    """One resident ``(graph_id, version)`` payload.

    Holds a strong reference to the snapshot object that shipped the entry
    (so the identity map can never alias a recycled ``id()``, and a late
    ``materialize`` can still write the segment), the materialised
    shared-memory payload (process transport) and the live refcount.
    Later snapshots that key-hit the entry are deliberately *not* retained
    — pinning every holder's copy would leak one full CSR graph per
    short-lived session on a long-lived shared key.
    """

    __slots__ = ("key", "compact", "payload", "nbytes", "refs")

    def __init__(self, key: PayloadKey, compact: CompactGraph) -> None:
        self.key = key
        self.compact = compact
        self.payload: Optional[_ShippedPayload] = None
        self.nbytes = (len(compact.indptr) + len(compact.indices)) * _ITEMSIZE
        self.refs = 0

    def close(self) -> None:
        if self.payload is not None:
            self.payload.close()
            self.payload = None


def _close_store_entries(entries: Dict[PayloadKey, _StoreEntry]) -> None:
    """Unlink every resident payload (close/GC/exit path)."""
    for entry in list(entries.values()):
        entry.close()
    entries.clear()


class PayloadStore:
    """Refcounted multi-entry table of shipped CSR payloads.

    Keys are ``(graph_id, version)`` pairs.  :meth:`ship` is the only entry
    point: the first ship of a key materialises the payload (shared-memory
    segment for the process transport; cache warming for the serial one)
    and every later ship of the same key — from any runtime, any tenant —
    is a hit.  Entries are evicted, and their segments unlinked, when the
    last holder calls :meth:`release`.

    Thread-safe: the serving gateway flushes tenant batches from executor
    threads, so every mutation takes the store lock.

    Examples
    --------
    >>> from repro.graph.csr import CompactGraph
    >>> store = PayloadStore()
    >>> cg = CompactGraph.from_edges([(0, 1), (1, 2)])
    >>> entry, shipped = store.ship(cg, key=("tenant-a", 0), materialize=False)
    >>> shipped and store.resident_payloads == 1
    True
    >>> _, again = store.ship(cg, key=("tenant-a", 0), materialize=False)
    >>> again  # second tenant: a hit, not a ship (refcount now 2)
    False
    >>> store.release(("tenant-a", 0)); store.release(("tenant-a", 0))
    >>> store.evictions  # the last holder left: the entry was evicted
    1
    >>> store.ship(cg, materialize=False)[0].key  # anonymous re-ship
    ('graph-0', 0)
    """

    def __init__(self) -> None:
        import weakref

        self._entries: Dict[PayloadKey, _StoreEntry] = {}
        self._by_identity: Dict[int, PayloadKey] = {}
        self._lock = threading.Lock()
        self._anon = 0
        self._closed = False
        self.ships = 0
        self.evictions = 0
        self.bytes_shipped = 0
        #: Cumulative bytes shipped per key (survives eviction — the
        #: capacity-planning ledger, not the residency table).
        self.shipped_by_key: Dict[PayloadKey, int] = {}
        self._finalizer = weakref.finalize(self, _close_store_entries, self._entries)

    @property
    def closed(self) -> bool:
        """``True`` once :meth:`close` has run."""
        return self._closed

    @property
    def resident_payloads(self) -> int:
        """Number of entries currently resident."""
        return len(self._entries)

    @property
    def resident_bytes(self) -> int:
        """Total CSR bytes of the resident entries."""
        return sum(entry.nbytes for entry in self._entries.values())

    def keys(self) -> List[PayloadKey]:
        """The resident ``(graph_id, version)`` keys."""
        return list(self._entries)

    def ship(
        self,
        compact: CompactGraph,
        key: Optional[PayloadKey] = None,
        materialize: bool = True,
    ) -> Tuple[_StoreEntry, bool]:
        """Ensure ``compact`` is resident; return ``(entry, shipped)``.

        ``key`` is the caller's ``(graph_id, version)`` identity; ``None``
        assigns an anonymous one.  A snapshot object already resident (under
        any key) and a key already resident (from any snapshot object) are
        both hits.  ``materialize=False`` is the serial transport: the entry
        is tracked and accounted, and "shipping" warms the snapshot's shared
        kernel caches instead of writing a segment.  The entry's refcount is
        incremented either way — callers own exactly one :meth:`release` per
        ship.
        """
        with self._lock:
            if self._closed:
                raise InvalidParameterError("this PayloadStore has been closed")
            entry = None
            existing_key = self._by_identity.get(id(compact))
            if existing_key is not None:
                entry = self._entries[existing_key]
            elif key is not None and key in self._entries:
                # Same (graph_id, version) from a different snapshot object
                # (e.g. two sessions opened on one dataset): reuse the
                # resident payload.  The new snapshot is NOT retained or
                # identity-registered — the key lookup dedupes its later
                # ships, and holding it would pin one graph copy per
                # session for the entry's lifetime.
                entry = self._entries[key]
            if entry is not None:
                shipped = False
                if materialize and entry.payload is None:
                    entry.payload = _ShippedPayload(entry.compact)
                    shipped = True
                    self._account_ship_locked(entry)
                entry.refs += 1
                return entry, shipped
            if key is None:
                key = (f"graph-{self._anon}", 0)
                self._anon += 1
            entry = _StoreEntry(key, compact)
            if materialize:
                entry.payload = _ShippedPayload(compact)
            else:
                # Serial "shipping" warms the snapshot's shared kernel
                # state once so every later chunk reuses it.
                compact.neighbor_sets()
                compact.dense_adjacency()
            self._entries[key] = entry
            self._by_identity[id(compact)] = key
            self._account_ship_locked(entry)
            entry.refs += 1
            return entry, True

    def _account_ship_locked(self, entry: _StoreEntry) -> None:
        self.ships += 1
        self.bytes_shipped += entry.nbytes
        self.shipped_by_key[entry.key] = (
            self.shipped_by_key.get(entry.key, 0) + entry.nbytes
        )

    def acquire(self, key: PayloadKey) -> _StoreEntry:
        """Take an extra reference on a resident key.

        Raises :class:`PayloadEvictedError` — naming the key and the
        resident keys — when the key was evicted or never shipped, instead
        of surfacing an opaque ``KeyError``.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                raise PayloadEvictedError(key, resident=list(self._entries))
            entry.refs += 1
            return entry

    def reship(self, key: PayloadKey) -> _StoreEntry:
        """Re-materialise a resident key's shared-memory segment.

        The integrity-recovery path: when a worker reports a torn or
        corrupt segment, the old segment is unlinked and the entry's
        retained snapshot is written into a fresh one under the same key
        (refcounts untouched).  Returns the entry with its new payload.
        """
        with self._lock:
            if self._closed:
                raise InvalidParameterError("this PayloadStore has been closed")
            entry = self._entries.get(key)
            if entry is None:
                raise PayloadEvictedError(key, resident=list(self._entries))
            if entry.payload is not None:
                entry.payload.close()
                entry.payload = None
            entry.payload = _ShippedPayload(entry.compact)
            self._account_ship_locked(entry)
            return entry

    def release(self, key: PayloadKey) -> None:
        """Drop one reference; evict (and unlink) the entry at zero."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return
            entry.refs -= 1
            if entry.refs <= 0:
                del self._entries[key]
                self._by_identity.pop(id(entry.compact), None)
                entry.close()
                self.evictions += 1

    def stats(self) -> Dict[str, Any]:
        """A JSON-friendly snapshot of the store's accounting."""
        with self._lock:
            return {
                "ships": self.ships,
                "evictions": self.evictions,
                "resident_payloads": len(self._entries),
                "resident_bytes": sum(e.nbytes for e in self._entries.values()),
                "bytes_shipped": self.bytes_shipped,
                "by_key": {
                    _render_key(key): bytes_shipped
                    for key, bytes_shipped in self.shipped_by_key.items()
                },
            }

    def close(self) -> None:
        """Evict everything and refuse further ships (idempotent)."""
        if self._closed:
            return
        with self._lock:
            self._closed = True
            self._finalizer.detach()
            self.evictions += len(self._entries)
            _close_store_entries(self._entries)
            self._by_identity.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PayloadStore(resident={self.resident_payloads}, "
            f"ships={self.ships}, evictions={self.evictions})"
        )


# ----------------------------------------------------------------------
# The runtime
# ----------------------------------------------------------------------
def _release_runtime_state(state: Dict[str, Any]) -> None:
    """Detach a runtime from its pool/store (close/GC/exit path)."""
    store: Optional[PayloadStore] = state.pop("store", None)
    key = state.pop("entry_key", None)
    if store is not None and key is not None and not store.closed:
        store.release(key)
    for shard_key in state.pop("shard_keys", None) or []:
        if store is not None and not store.closed:
            store.release(shard_key)
    if store is not None and state.pop("owns_store", False) and not store.closed:
        store.close()
    pool: Optional[WorkerPool] = state.pop("pool", None)
    if pool is not None and not pool.closed:
        pool.release()
    state.update(
        store=None, entry_key=None, shard_keys=[], pool=None, owns_store=False
    )


class ExecutionRuntime:
    """A lazily-created, reusable execution backend for CSR vertex chunks.

    Parameters
    ----------
    max_workers:
        Worker-pool size for a *privately created* pool (default
        ``os.cpu_count()``); also the default parallelism of the dynamic
        schedule.  Ignored when ``pool=`` is supplied.
    executor:
        ``"process"`` (persistent :class:`WorkerPool` + shared-memory
        transport, the production configuration) or ``"serial"``
        (in-process execution on the snapshot's own cached structures —
        deterministic, dependency-free, used by tests and the schedule
        model).
    oversubscribe:
        Chunks per worker produced by the dynamic schedule.
    pool:
        An existing :class:`WorkerPool` to attach to (multi-tenant
        sharing); ``None`` creates a private pool whose processes terminate
        with this runtime.
    store:
        An existing :class:`PayloadStore` to ship into; ``None`` creates a
        private store that closes with this runtime.
    task_deadline:
        Per-task straggler deadline in seconds (``None`` disables).  A
        submitted chunk with no result after this long is presumed lost
        and resubmitted (the kernels are pure, so duplicates are
        idempotent).  Default :data:`DEFAULT_TASK_DEADLINE`.
    max_task_retries:
        Resubmissions a single chunk may consume (worker death, deadline
        miss, injected fault, integrity failure) before it is quarantined
        and computed serially in the parent.  Default
        :data:`DEFAULT_MAX_TASK_RETRIES`.
    kernel:
        Kernel tier the chunk kernels serve: ``"python"`` (default, the
        interpreted oracle), ``"numpy"`` (vectorized batch kernels over
        the same CSR arrays — workers attach ``np.frombuffer`` views onto
        the already-shipped segments, so the tier changes zero transport
        bytes) or ``"auto"`` (numpy when importable, else python).
        Resolved once at construction via
        :func:`~repro.core.vec_kernels.normalize_kernel`; every tier is
        bit-identical by construction.

    Notes
    -----
    A runtime executes on one payload key *at a time*: executing a new
    ``(graph_id, version)`` acquires that entry and releases the previous
    one (which survives in a shared store while other tenants still hold
    it).  Use as a context manager — or call :meth:`close` — for
    deterministic teardown; ``weakref.finalize`` guards back every layer so
    crashes cannot leak pools or shared-memory segments.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        executor: "ParallelBackend | str" = ParallelBackend.PROCESS,
        oversubscribe: int = DEFAULT_OVERSUBSCRIBE,
        pool: Optional[WorkerPool] = None,
        store: Optional[PayloadStore] = None,
        task_deadline: Optional[float] = DEFAULT_TASK_DEADLINE,
        max_task_retries: int = DEFAULT_MAX_TASK_RETRIES,
        kernel: str = "python",
    ) -> None:
        import weakref

        from repro.core.vec_kernels import normalize_kernel

        if max_workers is not None and max_workers < 1:
            raise InvalidParameterError("max_workers must be positive")
        if oversubscribe < 1:
            raise InvalidParameterError("oversubscribe must be positive")
        if task_deadline is not None and task_deadline <= 0:
            raise InvalidParameterError("task_deadline must be positive or None")
        if max_task_retries < 0:
            raise InvalidParameterError("max_task_retries must be >= 0")
        self.task_deadline = task_deadline
        self.max_task_retries = max_task_retries
        self.kernel = normalize_kernel(kernel)
        self.executor = ParallelBackend(executor)
        if pool is None:
            pool = WorkerPool(max_workers)
        self.max_workers = max_workers or pool.max_workers
        self.oversubscribe = oversubscribe
        owns_store = store is None
        if owns_store:
            store = PayloadStore()
        # Mutable holder shared with the GC finaliser: the finaliser must
        # not keep ``self`` alive, yet must see the *current* attachments.
        self._state: Dict[str, Any] = {
            "pool": pool.acquire(),
            "store": store,
            "owns_store": owns_store,
            "entry_key": None,
            "shard_keys": [],
        }
        self._entry: Optional[_StoreEntry] = None
        # Sharded execution holds one store reference per resident shard
        # key (unlike the singular ``_entry``, shard entries are *not*
        # released when another shard executes — a sweep touches them all).
        self._shard_entries: Dict[ShardPayloadKey, _StoreEntry] = {}
        self._shard_estimates: Dict[ShardPayloadKey, List[float]] = {}
        self._shard_kernels: Dict[ShardPayloadKey, Any] = {}
        # Poison-task quarantine: (payload key, encoded chunk spec) pairs
        # that exhausted their retry budget execute serially in the parent
        # for the life of this runtime.
        self._quarantine: set = set()
        #: Poll granularity of the supervised result loop: how quickly a
        #: worker death / straggler is noticed while results are pending.
        self._poll_seconds = 0.02
        # The snapshot THIS runtime last executed on — the ship/release
        # short-circuit must be runtime-local, because a key-hit entry in a
        # shared store does not retain later holders' snapshot objects.
        self._owner: Optional[CompactGraph] = None
        self._estimates: Optional[List[float]] = None
        self._estimates_for: Optional[PayloadKey] = None
        # Parent-side chunk kernel for serial execution, memoized per
        # snapshot (the tier dispatch + counters live on the kernel).
        self._parent_kernel: Optional[Any] = None
        self._parent_kernel_for: Optional[CompactGraph] = None
        self._closed = False
        self._stats = RuntimeStats(
            executor=self.executor.value,
            max_workers=self.max_workers,
            kernel=self.kernel,
        )
        self._finalizer = weakref.finalize(self, _release_runtime_state, self._state)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """``True`` once :meth:`close` has run."""
        return self._closed

    @property
    def pool(self) -> WorkerPool:
        """The attached :class:`WorkerPool` (shared or private)."""
        return self._state["pool"]

    @property
    def store(self) -> PayloadStore:
        """The attached :class:`PayloadStore` (shared or private)."""
        return self._state["store"]

    def close(self) -> None:
        """Detach from the pool and store (idempotent).

        A private pool terminates its processes and a private store unlinks
        its segments; shared infrastructure merely loses this runtime's
        references (the entry this runtime held is evicted only if no other
        tenant still holds it).
        """
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        _release_runtime_state(self._state)
        self._entry = None
        self._owner = None
        self._estimates = None
        self._estimates_for = None
        self._parent_kernel = None
        self._parent_kernel_for = None
        self._shard_entries = {}
        self._shard_estimates = {}
        self._shard_kernels = {}

    def __enter__(self) -> "ExecutionRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExecutionRuntime(executor={self.executor.value!r}, "
            f"max_workers={self.max_workers}, ships={self._stats.payload_ships}, "
            f"closed={self._closed})"
        )

    def stats(self) -> RuntimeStats:
        """The cumulative :class:`RuntimeStats` (store fields refreshed)."""
        self._refresh_store_stats()
        return self._stats

    def _refresh_store_stats(self) -> None:
        store: Optional[PayloadStore] = self._state.get("store")
        if store is None or store.closed:
            return
        snapshot = store.stats()
        self._stats.resident_payloads = snapshot["resident_payloads"]
        self._stats.resident_bytes = snapshot["resident_bytes"]
        self._stats.payload_evictions = snapshot["evictions"]
        self._stats.payloads = snapshot["by_key"]

    # ------------------------------------------------------------------
    # Transport and pool management
    # ------------------------------------------------------------------
    def _ensure_shipped(
        self, compact: CompactGraph, payload_key: Optional[PayloadKey]
    ) -> bool:
        """Attach ``compact``'s store entry, shipping it if not resident."""
        if self._entry is not None and self._owner is compact:
            return False
        store: PayloadStore = self._state["store"]
        entry, shipped = store.ship(
            compact,
            key=payload_key,
            materialize=self.executor is ParallelBackend.PROCESS,
        )
        old = self._entry
        self._entry = entry
        self._owner = compact
        self._state["entry_key"] = entry.key
        if old is not None:
            store.release(old.key)
        if shipped:
            self._stats.payload_ships += 1
            self._stats.payload_bytes_shipped += entry.nbytes
            if entry.payload is not None and _faults.draw_ship_corruption():
                # Chaos hook: a "torn" ship — workers will detect the bad
                # checksum on attach and the batch re-ships cleanly.
                entry.payload.corrupt_header()
                _faults.note_performed("corruptions")
        self._stats.payload_bytes = entry.nbytes
        if self._estimates_for != entry.key:
            self._estimates = None
            self._estimates_for = entry.key
        return shipped

    def _ensure_pool(self) -> bool:
        """Start the worker pool if the process executor needs one."""
        if self.executor is not ParallelBackend.PROCESS:
            return False
        started = self.pool.ensure_started()
        if started:
            self._stats.pool_launches += 1
        return started

    def _ensure_shard_entry(
        self, compact: CompactGraph, key: ShardPayloadKey
    ) -> Tuple[_StoreEntry, bool]:
        """Attach one shard's store entry, shipping it if not yet held.

        Unlike :meth:`_ensure_shipped`, acquiring a new shard key does not
        release the others — a sharded sweep needs every shard resident at
        once.  Stale keys (a shard rebuilt under a newer version) are
        released by :meth:`_release_stale_shards` at batch setup.
        """
        entry = self._shard_entries.get(key)
        if entry is not None:
            return entry, False
        store: PayloadStore = self._state["store"]
        entry, shipped = store.ship(
            compact,
            key=key,
            materialize=self.executor is ParallelBackend.PROCESS,
        )
        self._shard_entries[key] = entry
        self._state["shard_keys"] = list(self._shard_entries)
        if shipped:
            self._stats.payload_ships += 1
            self._stats.payload_bytes_shipped += entry.nbytes
            if entry.payload is not None and _faults.draw_ship_corruption():
                entry.payload.corrupt_header()
                _faults.note_performed("corruptions")
        return entry, shipped

    def _release_stale_shards(self, wanted: set, graph_id: str) -> None:
        """Drop held shard keys of ``graph_id`` that this batch replaced."""
        store: PayloadStore = self._state["store"]
        stale = [
            key
            for key in self._shard_entries
            if key[0] == graph_id and key not in wanted
        ]
        for key in stale:
            del self._shard_entries[key]
            self._shard_estimates.pop(key, None)
            self._shard_kernels.pop(key, None)
            if not store.closed:
                store.release(key)
        if stale:
            self._state["shard_keys"] = list(self._shard_entries)

    def _shard_estimates_for(
        self, key: ShardPayloadKey, compact: CompactGraph
    ) -> List[float]:
        """Per-id work estimates of one shard subgraph (cached per key)."""
        estimates = self._shard_estimates.get(key)
        if estimates is None:
            from repro.parallel.partition import vertex_work_estimates_csr

            estimates = vertex_work_estimates_csr(compact)
            self._shard_estimates[key] = estimates
        return estimates

    def _shard_serial_kernel(self, key: ShardPayloadKey, compact: CompactGraph):
        """The parent-side chunk kernel of one shard (cached per key)."""
        kernel = self._shard_kernels.get(key)
        if kernel is None:
            from repro.core.csr_kernels import CSRChunkKernel

            kernel = CSRChunkKernel(
                compact.indptr,
                compact.indices,
                build_dense=False,
                kernel=self.kernel,
                nbr_sets=compact.neighbor_sets(),
                dense=compact.dense_adjacency(),
            )
            self._shard_kernels[key] = kernel
        return kernel

    # ------------------------------------------------------------------
    # Supervised process execution
    # ------------------------------------------------------------------
    @staticmethod
    def _spec_key(spec) -> Tuple:
        """A hashable identity for an encoded chunk spec (quarantine key)."""
        if spec[0] == "r":
            return spec
        return ("l", tuple(spec[1]))

    def _reship_entry(self, entry: _StoreEntry) -> None:
        """Replace one entry's segment after an integrity failure."""
        entry = self.store.reship(entry.key)
        self._stats.payload_ships += 1
        self._stats.payload_bytes_shipped += entry.nbytes

    def _tally_kernel(self, kinfo: Tuple[str, int]) -> None:
        """Fold one chunk's ``(tier served, fallback delta)`` into stats."""
        served, fallbacks = kinfo
        chunks = self._stats.kernel_chunks
        chunks[served] = chunks.get(served, 0) + 1
        self._stats.kernel_fallbacks += fallbacks

    def _serial_kernel(self, compact: CompactGraph):
        """The parent-side chunk kernel on ``compact``'s cached structures.

        Used by the serial executor; memoized per snapshot so repeated
        batches reuse one neighbour-set/dense build (and, on the numpy
        tier, one attached scorer).
        """
        if self._parent_kernel is None or self._parent_kernel_for is not compact:
            from repro.core.csr_kernels import CSRChunkKernel

            dense = compact.dense_adjacency()
            self._parent_kernel = CSRChunkKernel(
                compact.indptr,
                compact.indices,
                build_dense=False,
                kernel=self.kernel,
                nbr_sets=compact.neighbor_sets(),
                dense=dense,
            )
            self._parent_kernel_for = compact
        return self._parent_kernel

    def _run_supervised(
        self,
        task_fn: Callable,
        tasks: Sequence[Tuple[int, Sequence[int]]],
        extra: Tuple,
        serial_chunk: Callable[[int, Sequence[int]], Any],
        entry_of: Optional[Dict[int, _StoreEntry]] = None,
    ) -> Dict[int, Tuple[Any, float]]:
        """Submit chunk tasks and collect results under supervision.

        The happy path is the old submit-then-get loop; on top of it this
        detects vanished workers (pid liveness), resubmits their lost
        tasks, retries stragglers past ``task_deadline`` and tasks hit by
        injected faults, re-ships torn payloads, respawns a broken pool
        with bounded backoff, and quarantines chunks that exhaust their
        retry budget (they run serially in the parent — the kernels are
        pure, so every recovery path stays bit-identical).

        ``entry_of`` maps a task index to the store entry its chunk
        executes against (sharded batches fan one submission loop out over
        many shard payloads); ``None`` means every task runs on the
        runtime's singular attached entry.  ``serial_chunk(index, chunk)``
        is the in-parent fallback for quarantined chunks.

        Returns ``{chunk index: (result payload, kernel seconds,
        (tier served, fallback delta))}`` for every submitted task.
        Deterministic kernel errors (anything that is not a worker fault)
        propagate unchanged.
        """
        pool: WorkerPool = self.pool
        stats = self._stats
        chunk_of: Dict[int, Sequence[int]] = dict(tasks)
        specs = {index: _encode_ids(chunk) for index, chunk in tasks}
        retries = {index: 0 for index, _ in tasks}
        outputs: Dict[int, Tuple[Any, float, Tuple[str, int]]] = {}
        # index -> [async_result, submitted_at, meta-at-submit]
        pending: Dict[int, List[Any]] = {}
        to_submit = [index for index, _ in tasks]
        respawn_budget = _MAX_RESPAWNS_PER_BATCH

        def entry_for(index: int) -> _StoreEntry:
            return self._entry if entry_of is None else entry_of[index]

        def run_quarantined(index: int) -> None:
            # Quarantined chunks run the parent's serial python oracle —
            # bit-identical by the tier contract, so no tier bookkeeping
            # beyond attributing the chunk to the python tier.
            start = time.perf_counter()
            payload = serial_chunk(index, chunk_of[index])
            outputs[index] = (payload, time.perf_counter() - start, ("python", 0))

        def charge_retry(index: int) -> None:
            retries[index] += 1
            if retries[index] > self.max_task_retries:
                self._quarantine.add(
                    (entry_for(index).key, self._spec_key(specs[index]))
                )
                stats.quarantined_tasks += 1
                run_quarantined(index)
            else:
                stats.task_retries += 1
                to_submit.append(index)

        while to_submit or pending:
            # --- submit everything queued --------------------------------
            while to_submit:
                index = to_submit[-1]
                if (
                    entry_for(index).key,
                    self._spec_key(specs[index]),
                ) in self._quarantine:
                    to_submit.pop()
                    run_quarantined(index)
                    continue
                meta = entry_for(index).payload.meta
                fault = _faults.draw_task_fault()
                try:
                    result = pool.submit(
                        task_fn, (meta, index, specs[index]) + extra + (fault,)
                    )
                except PoolStateError:
                    raise
                except PoolBrokenError:
                    # The pool itself is torn: every in-flight result is
                    # orphaned.  Respawn (bounded backoff) and resubmit the
                    # lot — or give up if the pool will not come back.
                    if respawn_budget <= 0:
                        raise
                    respawn_budget -= 1
                    to_submit.extend(pending)
                    pending.clear()
                    pool.respawn()
                    stats.respawns += 1
                    continue
                to_submit.pop()
                pending[index] = [result, time.monotonic(), meta]

            if not pending:
                break

            # --- collect whatever is ready -------------------------------
            progressed = False
            for index in list(pending):
                result, _, meta = pending[index]
                if not result.ready():
                    continue
                del pending[index]
                progressed = True
                try:
                    out = result.get()
                except (PayloadIntegrityError, FileNotFoundError):
                    # Torn/corrupt segment (or a stale segment name after a
                    # concurrent re-ship): re-ship once per corruption, then
                    # retry the task against the fresh segment.
                    stats.integrity_failures += 1
                    if meta == entry_for(index).payload.meta:
                        self._reship_entry(entry_for(index))
                    charge_retry(index)
                except InjectedFaultError:
                    charge_retry(index)
                else:
                    out_index, payload, seconds, kinfo = out
                    outputs[out_index] = (payload, seconds, kinfo)

            if progressed or not pending:
                continue

            # --- nothing ready: health and deadline checks ---------------
            next(iter(pending.values()))[0].wait(self._poll_seconds)
            deaths = pool.check_workers()
            if deaths:
                stats.worker_deaths += deaths
                # A vanished worker silently drops whatever it was
                # executing; queued tasks survive, but telling them apart
                # is impossible from here — resubmit every in-flight task
                # (idempotent; results are keyed and merged by index).
                for index in list(pending):
                    if pending[index][0].ready():
                        continue
                    del pending[index]
                    charge_retry(index)
                continue
            if self.task_deadline is not None:
                now = time.monotonic()
                for index in list(pending):
                    result, submitted_at, _ = pending[index]
                    if result.ready() or now - submitted_at <= self.task_deadline:
                        continue
                    del pending[index]
                    stats.deadline_misses += 1
                    charge_retry(index)

        pool.reset_backoff()
        return outputs

    def _work_estimates(self, compact: CompactGraph) -> List[float]:
        """Per-id work estimates of the attached graph (cached per key)."""
        if self._estimates is None:
            from repro.parallel.partition import vertex_work_estimates_csr

            self._estimates = vertex_work_estimates_csr(compact)
        return self._estimates

    def dynamic_chunks(
        self,
        compact: CompactGraph,
        ids: Sequence[int],
        num_workers: int,
        *,
        estimates: Optional[List[float]] = None,
        target_chunks: Optional[int] = None,
    ) -> List[List[int]]:
        """Split ``ids`` into weight-balanced contiguous id ranges.

        The dynamic schedule's unit of work: ascending id order (cache
        friendly, range-encodable) cut into ``num_workers × oversubscribe``
        chunks of approximately equal estimated work, executed via the
        pool's shared queue so idle workers steal the next chunk.
        ``estimates``/``target_chunks`` override the attached-payload
        estimate cache and the chunk-count target (the sharded fan-out
        chunks each shard subgraph with its own estimates and splits the
        oversubscription budget across shards).
        """
        ids = sorted(ids)
        if not ids:
            return []
        if estimates is None:
            estimates = self._work_estimates(compact)
        if target_chunks is None:
            target_chunks = num_workers * self.oversubscribe
        target_chunks = max(1, min(len(ids), target_chunks))
        total = sum(estimates[i] for i in ids)
        target = total / target_chunks
        chunks: List[List[int]] = []
        current: List[int] = []
        acc = 0.0
        for i in ids:
            current.append(i)
            acc += estimates[i]
            if acc >= target and len(chunks) < target_chunks - 1:
                chunks.append(current)
                current = []
                acc = 0.0
        if current:
            chunks.append(current)
        return chunks

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        compact: CompactGraph,
        chunks: Optional[Sequence[Sequence[int]]] = None,
        *,
        ids: Optional[Iterable[int]] = None,
        num_workers: Optional[int] = None,
        schedule: str = "dynamic",
        payload_key: Optional[PayloadKey] = None,
    ) -> Tuple[Dict[int, float], BatchStats]:
        """Score vertex chunks of ``compact``; return ``(scores, batch)``.

        Parameters
        ----------
        compact:
            The snapshot to execute on.  A snapshot the store has not seen
            ships the payload (once per ``(graph_id, version)``); a
            resident one — shipped by this runtime or any other tenant of a
            shared store — reuses the shipped arrays.
        chunks:
            An explicit static schedule (per-worker id chunks).  When
            omitted, the runtime chunks ``ids`` itself according to
            ``schedule``.
        ids:
            The dense vertex ids to score (default: every vertex).
            Ignored when ``chunks`` is given.
        num_workers:
            Parallelism used by the dynamic chunker (default
            ``max_workers``).
        schedule:
            ``"dynamic"`` (weight-balanced oversubscribed ranges, shared
            task queue) or ``"static"`` (one chunk per worker in id-range
            blocks) — only consulted when ``chunks`` is omitted.
        payload_key:
            The ``(graph_id, version)`` store key for this snapshot
            (sessions pass theirs); ``None`` lets the store assign an
            anonymous identity-scoped key.

        Returns
        -------
        The merged ``{id: score}`` map — materialised in ascending id order
        for every executor/schedule/worker count, which is what keeps every
        downstream consumer bit-identical to the serial path — plus the
        batch's :class:`BatchStats`.
        """
        prepared = self._prepare_batch(compact, schedule, payload_key)
        shipped, pool_started, setup_seconds = prepared
        workers = num_workers or self.max_workers
        explicit_schedule = chunks is not None

        if chunks is None:
            if ids is None:
                ids = range(compact.num_vertices)
            if schedule == "dynamic":
                chunks = self.dynamic_chunks(compact, list(ids), workers)
            else:
                from repro.parallel.partition import block_partition

                chunks = block_partition(sorted(ids), workers)

        compute_start = time.perf_counter()
        merged: Dict[int, float] = {}
        chunk_seconds = [0.0] * len(chunks)
        tasks = [(i, chunk) for i, chunk in enumerate(chunks) if chunk]
        if self.executor is ParallelBackend.SERIAL:
            kernel = self._serial_kernel(compact)
            for i, chunk in tasks:
                scores, seconds, kinfo = _serve_chunk(kernel, "score_chunk", chunk)
                merged.update(scores)
                chunk_seconds[i] = seconds
                self._tally_kernel(kinfo)
        else:
            from repro.core.csr_kernels import ego_betweenness_from_arrays

            def serial_chunk(index, chunk):
                return ego_betweenness_from_arrays(
                    compact.indptr,
                    compact.indices,
                    chunk,
                    compact.neighbor_sets(),
                    compact.dense_adjacency(),
                )

            outputs = self._run_supervised(
                _score_task, tasks, (self.kernel,), serial_chunk
            )
            for i, _ in tasks:
                scores, seconds, kinfo = outputs[i]
                merged.update(scores)
                chunk_seconds[i] = seconds
                self._tally_kernel(kinfo)
        merged = {pid: merged[pid] for pid in sorted(merged)}
        compute_seconds = time.perf_counter() - compute_start

        batch = BatchStats(
            num_tasks=len(tasks),
            schedule="static" if explicit_schedule else schedule,
            shipped=shipped,
            pool_started=pool_started,
            setup_seconds=setup_seconds,
            compute_seconds=compute_seconds,
            chunk_seconds=chunk_seconds,
            kind="scores",
        )
        self._account_batch(batch)
        return merged, batch

    def execute_top_k(
        self,
        compact: CompactGraph,
        k: int,
        *,
        ids: Optional[Iterable[int]] = None,
        num_workers: Optional[int] = None,
        payload_key: Optional[PayloadKey] = None,
    ) -> Tuple[List[Tuple[int, float]], BatchStats]:
        """Top-k ids of ``compact`` with worker-side result reduction.

        Each chunk task scores its ascending-id range and returns only the
        entries at or above the chunk's k-th largest score (``k``
        candidates plus any ties at that threshold — see
        :func:`~repro.core.csr_kernels.top_k_entries_from_arrays` for why
        the tie cohort must ship whole); the parent offers the per-chunk
        candidates to one :class:`~repro.core.topk.TopKAccumulator` in
        canonical chunk order.  Because the chunks partition the ids in
        ascending order, that replays the serial ascending-id sweep with
        only strictly-below-threshold entries omitted — entries that can
        never enter the final heap — so the merged retained set is
        **bit-identical to the serial naive ranking** (same entries, same
        tie-breaking) while only ``O(tasks × k + ties)`` entries cross the
        process boundary instead of every score.

        Returns the ranked ``(id, score)`` entries (best first, ties broken
        exactly as :meth:`TopKAccumulator.ranked_entries` does on ids) and
        the batch's :class:`BatchStats`.
        """
        from repro.core.topk import TopKAccumulator

        if k < 1:
            raise InvalidParameterError("k must be a positive integer")
        prepared = self._prepare_batch(compact, "dynamic", payload_key)
        shipped, pool_started, setup_seconds = prepared
        workers = num_workers or self.max_workers
        id_list = sorted(ids) if ids is not None else list(range(compact.num_vertices))
        chunks = self.dynamic_chunks(compact, id_list, workers)

        compute_start = time.perf_counter()
        chunk_seconds = [0.0] * len(chunks)
        tasks = [(i, chunk) for i, chunk in enumerate(chunks) if chunk]
        per_chunk: Dict[int, List[Tuple[int, float]]] = {}
        cap = min(k, len(id_list)) if id_list else 0
        if cap:
            if self.executor is ParallelBackend.SERIAL:
                kernel = self._serial_kernel(compact)
                for i, chunk in tasks:
                    entries, seconds, kinfo = _serve_chunk(
                        kernel, "top_chunk", chunk, cap
                    )
                    per_chunk[i] = entries
                    chunk_seconds[i] = seconds
                    self._tally_kernel(kinfo)
            else:
                from repro.core.csr_kernels import top_k_entries_from_arrays

                def serial_chunk(index, chunk):
                    return top_k_entries_from_arrays(
                        compact.indptr,
                        compact.indices,
                        chunk,
                        cap,
                        compact.neighbor_sets(),
                        compact.dense_adjacency(),
                    )

                outputs = self._run_supervised(
                    _topk_task, tasks, (cap, self.kernel), serial_chunk
                )
                for i, _ in tasks:
                    entries, seconds, kinfo = outputs[i]
                    per_chunk[i] = entries
                    chunk_seconds[i] = seconds
                    self._tally_kernel(kinfo)
        merged_entries: List[Tuple[int, float]] = []
        if cap:
            accumulator = TopKAccumulator(cap)
            # Canonical merge order: chunk index order × ascending id within
            # each chunk == one ascending-id sweep with the dominated
            # candidates already removed.
            for i, _ in tasks:
                for pid, score in per_chunk[i]:
                    accumulator.offer(pid, score)
            merged_entries = accumulator.ranked_entries()
        compute_seconds = time.perf_counter() - compute_start

        batch = BatchStats(
            num_tasks=len(tasks),
            schedule="dynamic",
            shipped=shipped,
            pool_started=pool_started,
            setup_seconds=setup_seconds,
            compute_seconds=compute_seconds,
            chunk_seconds=chunk_seconds,
            kind="top_k",
        )
        self._account_batch(batch)
        return merged_entries, batch

    # ------------------------------------------------------------------
    # Sharded execution: one batch fanned out across shard payloads
    # ------------------------------------------------------------------
    def _prepare_sharded_batch(
        self, units: Sequence[Tuple]
    ) -> Tuple[List[_StoreEntry], int, bool, float]:
        """Ship/attach every shard entry, drop stale ones, start the pool."""
        if self._closed:
            raise InvalidParameterError("this ExecutionRuntime has been closed")
        if not units:
            raise InvalidParameterError("sharded execution needs at least one unit")
        setup_start = time.perf_counter()
        entries: List[_StoreEntry] = []
        shipped = 0
        for unit in units:
            key, compact = unit[0], unit[1]
            entry, did_ship = self._ensure_shard_entry(compact, key)
            entries.append(entry)
            shipped += 1 if did_ship else 0
        self._release_stale_shards({unit[0] for unit in units}, units[0][0][0])
        pool_started = self._ensure_pool()
        return entries, shipped, pool_started, time.perf_counter() - setup_start

    def _sharded_tasks(
        self,
        units: Sequence[Tuple],
        entries: List[_StoreEntry],
        workers: int,
    ) -> Tuple[List[Tuple[int, List[int]]], Dict[int, _StoreEntry], Dict[int, int]]:
        """Chunk every shard's ids into one flat supervised task list.

        The oversubscription budget (``workers × oversubscribe`` chunks) is
        split across the shards, so the total task count — and hence the
        self-scheduling granularity — matches the single-payload path; each
        shard is chunked with its own work estimates.  Returns the flat
        ``(index, chunk)`` tasks plus the per-index entry and unit maps.
        """
        budget = max(len(units), workers * self.oversubscribe)
        per_shard = max(1, budget // len(units))
        tasks: List[Tuple[int, List[int]]] = []
        entry_of: Dict[int, _StoreEntry] = {}
        unit_of: Dict[int, int] = {}
        for u, unit in enumerate(units):
            key, compact, ids = unit[0], unit[1], unit[2]
            estimates = self._shard_estimates_for(key, compact)
            for chunk in self.dynamic_chunks(
                compact,
                list(ids),
                workers,
                estimates=estimates,
                target_chunks=per_shard,
            ):
                index = len(tasks)
                tasks.append((index, chunk))
                entry_of[index] = entries[u]
                unit_of[index] = u
        return tasks, entry_of, unit_of

    def _tally_shard_chunks(
        self, units: Sequence[Tuple], unit_of: Dict[int, int]
    ) -> None:
        """Fold this batch's per-shard chunk counts into the runtime stats."""
        chunks = self._stats.shard_chunks
        for u in unit_of.values():
            shard_index = str(units[u][0][1])
            chunks[shard_index] = chunks.get(shard_index, 0) + 1
        self._stats.sharded_batches += 1

    def execute_sharded(
        self,
        units: Sequence[Tuple[ShardPayloadKey, CompactGraph, Sequence[int]]],
        *,
        num_workers: Optional[int] = None,
    ) -> Tuple[List[Dict[int, float]], BatchStats]:
        """Score shard-local vertex chunks across many shard payloads.

        ``units`` is one ``(payload key, shard subgraph, shard-local ids)``
        triple per shard, in canonical (ascending shard index) order — the
        session derives them from its
        :class:`~repro.graph.partition.ShardPlan`.  Every shard entry is
        shipped at most once and stays resident across batches (all held
        shard references are dropped only when a newer shard version
        replaces them, or at :meth:`close`), so a warm sweep ships nothing
        and fans its chunk tasks over all shards through one supervised
        submission loop — worker death, stragglers, torn shard payloads and
        quarantine all recover exactly as on the single-payload path.

        Returns one ``{local id: score}`` map per unit (ascending local id,
        aligned with ``units``) plus the batch's :class:`BatchStats`.  The
        scores are bit-identical to running the serial kernels on each
        shard subgraph — and, because each shard contains every owned
        vertex's complete ego network (the halo construction), to the
        unsharded oracle on the parent graph.
        """
        entries, shipped, pool_started, setup_seconds = self._prepare_sharded_batch(
            units
        )
        workers = num_workers or self.max_workers
        tasks, entry_of, unit_of = self._sharded_tasks(units, entries, workers)

        compute_start = time.perf_counter()
        chunk_seconds = [0.0] * len(tasks)
        results: List[Dict[int, float]] = [{} for _ in units]
        if self.executor is ParallelBackend.SERIAL:
            for index, chunk in tasks:
                unit = units[unit_of[index]]
                kernel = self._shard_serial_kernel(unit[0], unit[1])
                scores, seconds, kinfo = _serve_chunk(kernel, "score_chunk", chunk)
                results[unit_of[index]].update(scores)
                chunk_seconds[index] = seconds
                self._tally_kernel(kinfo)
        elif tasks:
            from repro.core.csr_kernels import ego_betweenness_from_arrays

            def serial_chunk(index, chunk):
                compact = units[unit_of[index]][1]
                return ego_betweenness_from_arrays(
                    compact.indptr,
                    compact.indices,
                    chunk,
                    compact.neighbor_sets(),
                    compact.dense_adjacency(),
                )

            outputs = self._run_supervised(
                _score_task, tasks, (self.kernel,), serial_chunk, entry_of=entry_of
            )
            for index, _ in tasks:
                scores, seconds, kinfo = outputs[index]
                results[unit_of[index]].update(scores)
                chunk_seconds[index] = seconds
                self._tally_kernel(kinfo)
        results = [
            {local: merged[local] for local in sorted(merged)} for merged in results
        ]
        compute_seconds = time.perf_counter() - compute_start

        self._tally_shard_chunks(units, unit_of)
        batch = BatchStats(
            num_tasks=len(tasks),
            schedule="dynamic",
            shipped=shipped > 0,
            pool_started=pool_started,
            setup_seconds=setup_seconds,
            compute_seconds=compute_seconds,
            chunk_seconds=chunk_seconds,
            kind="scores",
            shards=len(units),
        )
        self._account_batch(batch)
        return results, batch

    def execute_top_k_sharded(
        self,
        units: Sequence[
            Tuple[ShardPayloadKey, CompactGraph, Sequence[int], Sequence[int]]
        ],
        k: int,
        *,
        num_workers: Optional[int] = None,
    ) -> Tuple[List[Tuple[int, float]], BatchStats]:
        """Top-k across shard payloads with merged threshold cuts.

        ``units`` adds a fourth element per shard: ``global_rank``, mapping
        each shard-local id to its *parent-graph* dense id.  Each chunk
        task returns its bounded candidate set (``cap`` entries plus the
        tie cohort at the chunk threshold, exactly as the single-payload
        path); the parent maps every surviving candidate to its parent id
        and offers them all to one
        :class:`~repro.core.topk.TopKAccumulator` in **ascending parent-id
        order**.  That replays the serial ascending-id sweep over the
        parent graph with only strictly-below-threshold entries omitted —
        the chunks partition the owned vertices across shards, so the
        existing per-chunk merge proof covers the shard fan-out unchanged
        and the retained entries (tie-breaking included) are bit-identical
        to the unsharded serial ranking.

        Returns the ranked ``(parent id, score)`` entries and the batch's
        :class:`BatchStats`.
        """
        from repro.core.topk import TopKAccumulator

        if k < 1:
            raise InvalidParameterError("k must be a positive integer")
        entries, shipped, pool_started, setup_seconds = self._prepare_sharded_batch(
            units
        )
        workers = num_workers or self.max_workers
        cap = min(k, sum(len(unit[2]) for unit in units))
        tasks: List[Tuple[int, List[int]]] = []
        entry_of: Dict[int, _StoreEntry] = {}
        unit_of: Dict[int, int] = {}
        if cap:
            tasks, entry_of, unit_of = self._sharded_tasks(units, entries, workers)

        compute_start = time.perf_counter()
        chunk_seconds = [0.0] * len(tasks)
        per_task: Dict[int, List[Tuple[int, float]]] = {}
        if tasks:
            if self.executor is ParallelBackend.SERIAL:
                for index, chunk in tasks:
                    unit = units[unit_of[index]]
                    kernel = self._shard_serial_kernel(unit[0], unit[1])
                    chunk_entries, seconds, kinfo = _serve_chunk(
                        kernel, "top_chunk", chunk, cap
                    )
                    per_task[index] = chunk_entries
                    chunk_seconds[index] = seconds
                    self._tally_kernel(kinfo)
            else:
                from repro.core.csr_kernels import top_k_entries_from_arrays

                def serial_chunk(index, chunk):
                    compact = units[unit_of[index]][1]
                    return top_k_entries_from_arrays(
                        compact.indptr,
                        compact.indices,
                        chunk,
                        cap,
                        compact.neighbor_sets(),
                        compact.dense_adjacency(),
                    )

                outputs = self._run_supervised(
                    _topk_task, tasks, (cap, self.kernel), serial_chunk,
                    entry_of=entry_of,
                )
                for index, _ in tasks:
                    chunk_entries, seconds, kinfo = outputs[index]
                    per_task[index] = chunk_entries
                    chunk_seconds[index] = seconds
                    self._tally_kernel(kinfo)
        merged_entries: List[Tuple[int, float]] = []
        if tasks:
            candidates: List[Tuple[int, float]] = []
            for index, _ in tasks:
                global_rank = units[unit_of[index]][3]
                for local, score in per_task[index]:
                    candidates.append((global_rank[local], score))
            candidates.sort(key=lambda entry: entry[0])
            accumulator = TopKAccumulator(cap)
            for parent_id, score in candidates:
                accumulator.offer(parent_id, score)
            merged_entries = accumulator.ranked_entries()
        compute_seconds = time.perf_counter() - compute_start

        self._tally_shard_chunks(units, unit_of)
        batch = BatchStats(
            num_tasks=len(tasks),
            schedule="dynamic",
            shipped=shipped > 0,
            pool_started=pool_started,
            setup_seconds=setup_seconds,
            compute_seconds=compute_seconds,
            chunk_seconds=chunk_seconds,
            kind="top_k",
            shards=len(units),
        )
        self._account_batch(batch)
        return merged_entries, batch

    def _prepare_batch(
        self,
        compact: CompactGraph,
        schedule: str,
        payload_key: Optional[PayloadKey],
    ) -> Tuple[bool, bool, float]:
        """Validate, ship and start the pool; return the setup accounting."""
        if self._closed:
            raise InvalidParameterError("this ExecutionRuntime has been closed")
        if schedule not in ("dynamic", "static"):
            raise InvalidParameterError(
                f"unknown schedule {schedule!r}; use 'dynamic' or 'static'"
            )
        setup_start = time.perf_counter()
        shipped = self._ensure_shipped(compact, payload_key)
        pool_started = self._ensure_pool()
        return shipped, pool_started, time.perf_counter() - setup_start

    def _account_batch(self, batch: BatchStats) -> None:
        stats = self._stats
        stats.batches += 1
        stats.tasks += batch.num_tasks
        stats.setup_seconds += batch.setup_seconds
        stats.compute_seconds += batch.compute_seconds
        if self.executor is ParallelBackend.PROCESS and not batch.pool_started:
            stats.pool_reuses += 1
        stats.last_batch = batch
        self._refresh_store_stats()
