"""Persistent execution runtime: shared worker pools + zero-copy CSR transport.

The paper's Section V parallelises the all-vertex ego-betweenness
computation across threads that all read one shared graph.  The Python
reproduction originally approximated that with a throwaway
``multiprocessing`` pool per call, re-pickling the graph payload every
time — fine for a single Fig. 10 run, hopeless for a service answering a
stream of queries.  :class:`ExecutionRuntime` is the long-lived equivalent
of the paper's thread pool:

* **One pool, many batches.**  The worker pool is created lazily on the
  first process-executed batch and reused by every later batch; the
  per-batch cost of a warm runtime is task submission alone.
* **Ship the graph once per version.**  The flat CSR arrays of a
  :class:`~repro.graph.csr.CompactGraph` snapshot are written into a
  :mod:`multiprocessing.shared_memory` segment exactly once per graph
  version; workers attach to the segment and read the arrays through
  zero-copy ``memoryview`` casts, building their derived kernel state
  (neighbour sets, dense bitmap) once per version.  Only a mutation (a new
  snapshot identity) triggers a re-ship.
* **Dynamic chunking with a shared task queue.**  Besides executing an
  explicit static schedule (the deterministic Fig. 10 model produced by
  :func:`~repro.parallel.partition.balanced_partition`), the runtime can
  split the requested ids into ``num_workers × oversubscribe``
  weight-balanced contiguous id ranges and let idle workers pull the next
  chunk from the pool's shared queue — self-scheduling work stealing, which
  absorbs load skew without giving up deterministic results.

Scores are **bit-identical** to the serial kernels for any worker count,
executor and schedule: every vertex is scored independently by the same
canonical-histogram kernel and the merged map is materialised in ascending
id order.

Accounting lives in :class:`RuntimeStats` (cumulative) and
:class:`BatchStats` (per batch): payload ships, pool launches vs reuses,
setup vs compute seconds and per-chunk latencies.  ``setup_seconds`` —
pool start-up plus payload shipping — is reported separately from
``compute_seconds`` precisely so speedup figures are not polluted by fork
cost.

Examples
--------
>>> from repro.graph.csr import CompactGraph
>>> cg = CompactGraph.from_edges([(0, 1), (0, 2), (1, 2), (1, 3)])
>>> with ExecutionRuntime(max_workers=2, executor="serial") as runtime:
...     scores, batch = runtime.execute(cg)
...     again, _ = runtime.execute(cg)
>>> scores == again and sorted(scores) == [0, 1, 2, 3]
True
>>> runtime.stats().payload_ships  # one ship for both batches
1
"""

from __future__ import annotations

import time
from array import array
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import InvalidParameterError
from repro.graph.csr import CompactGraph

__all__ = [
    "ParallelBackend",
    "ExecutionRuntime",
    "RuntimeStats",
    "BatchStats",
    "DEFAULT_OVERSUBSCRIBE",
]

#: Chunks per worker produced by the dynamic schedule: small enough that an
#: unlucky worker never sits on more than ``1/oversubscribe`` of the work,
#: large enough that per-task submission overhead stays negligible.
DEFAULT_OVERSUBSCRIBE = 4

#: Fixed-width signed 64-bit array typecode used for the shipped buffers —
#: one definition so parent writes and worker casts can never disagree.
_TYPECODE = "q"
_ITEMSIZE = array(_TYPECODE).itemsize


class ParallelBackend(str, Enum):
    """Available execution backends for the runtime and the engines."""

    SERIAL = "serial"
    PROCESS = "process"


@dataclass(frozen=True)
class BatchStats:
    """Execution accounting for one :meth:`ExecutionRuntime.execute` batch.

    Attributes
    ----------
    num_tasks:
        Number of (non-empty) chunks executed.
    schedule:
        ``"static"`` (caller-provided chunks) or ``"dynamic"`` (runtime
        chunking + shared-queue self-scheduling).
    shipped:
        Whether this batch had to ship the graph payload (first batch on a
        new graph version).
    pool_started:
        Whether this batch paid the worker-pool start-up (first process
        batch of the runtime's life).
    setup_seconds:
        Pool start-up plus payload-shipping time of this batch (0.0 for a
        warm runtime).
    compute_seconds:
        Wall-clock time of the chunk execution itself.
    chunk_seconds:
        Per-chunk kernel seconds, aligned with the executed chunks (static
        schedules: aligned with the caller's chunk list, empty chunks
        report 0.0).
    """

    num_tasks: int
    schedule: str
    shipped: bool
    pool_started: bool
    setup_seconds: float
    compute_seconds: float
    chunk_seconds: List[float] = field(default_factory=list)


@dataclass
class RuntimeStats:
    """Cumulative accounting of one :class:`ExecutionRuntime`.

    Attributes
    ----------
    executor:
        ``"serial"`` or ``"process"``.
    max_workers:
        The pool size (process executor) / nominal parallelism.
    payload_ships:
        Times the CSR payload was materialised into the transport — exactly
        once per distinct graph version the runtime has executed on.
    payload_bytes:
        Size of the currently shipped payload in bytes.
    pool_launches:
        Worker pools started over the runtime's life (0 or 1 unless the
        runtime was closed and revived by a caller).
    pool_reuses:
        Process batches served by an already-running pool.
    batches:
        Total :meth:`~ExecutionRuntime.execute` batches run.
    tasks:
        Total chunks executed.
    setup_seconds / compute_seconds:
        Cumulative split of where the time went: pool start-up + payload
        shipping vs kernel execution.
    last_batch:
        The most recent :class:`BatchStats`, or ``None``.
    """

    executor: str
    max_workers: int
    payload_ships: int = 0
    payload_bytes: int = 0
    pool_launches: int = 0
    pool_reuses: int = 0
    batches: int = 0
    tasks: int = 0
    setup_seconds: float = 0.0
    compute_seconds: float = 0.0
    last_batch: Optional[BatchStats] = None

    def as_dict(self) -> Dict[str, Any]:
        """Return a JSON-friendly dict (the CLI/benchmark payload shape)."""
        payload: Dict[str, Any] = {
            "executor": self.executor,
            "max_workers": self.max_workers,
            "payload_ships": self.payload_ships,
            "payload_bytes": self.payload_bytes,
            "pool_launches": self.pool_launches,
            "pool_reuses": self.pool_reuses,
            "batches": self.batches,
            "tasks": self.tasks,
            "setup_seconds": self.setup_seconds,
            "compute_seconds": self.compute_seconds,
        }
        if self.last_batch is not None:
            payload["last_batch"] = {
                "num_tasks": self.last_batch.num_tasks,
                "schedule": self.last_batch.schedule,
                "shipped": self.last_batch.shipped,
                "pool_started": self.last_batch.pool_started,
                "setup_seconds": self.last_batch.setup_seconds,
                "compute_seconds": self.last_batch.compute_seconds,
            }
        return payload


# ----------------------------------------------------------------------
# Parent-side transport: one shared-memory segment per graph version
# ----------------------------------------------------------------------
class _ShippedPayload:
    """The CSR arrays of one graph version, materialised in shared memory.

    Layout: ``indptr`` (``n + 1`` int64) immediately followed by ``indices``
    (``2m`` int64).  ``meta`` is the tiny picklable handle shipped with
    every task: ``(segment_name, len(indptr), len(indices))``.
    """

    __slots__ = ("shm", "meta", "nbytes")

    def __init__(self, compact: CompactGraph) -> None:
        from multiprocessing import shared_memory

        indptr = array(_TYPECODE, compact.indptr)
        indices = array(_TYPECODE, compact.indices)
        ptr_bytes = len(indptr) * _ITEMSIZE
        self.nbytes = ptr_bytes + len(indices) * _ITEMSIZE
        self.shm = shared_memory.SharedMemory(create=True, size=max(self.nbytes, 1))
        self.shm.buf[:ptr_bytes] = indptr.tobytes()
        if indices:
            self.shm.buf[ptr_bytes : self.nbytes] = indices.tobytes()
        self.meta = (self.shm.name, len(indptr), len(indices))

    def close(self) -> None:
        try:
            self.shm.close()
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


# ----------------------------------------------------------------------
# Worker-side state: attach once per graph version, score many chunks
# ----------------------------------------------------------------------
class _AttachedGraph:
    """A worker's zero-copy view of one shipped graph version.

    Attaching maps the shared segment and casts the two array regions as
    ``memoryview``\\ s — no deserialisation, no copy of the adjacency — then
    builds the process-local :class:`~repro.core.csr_kernels.CSRChunkKernel`
    (neighbour sets, dense bitmap) once.  ``close`` releases the views
    before closing the mapping, in that order, or ``mmap`` refuses to
    unmap.
    """

    __slots__ = ("shm", "kernel", "_views")

    def __init__(self, meta: Tuple[str, int, int]) -> None:
        from multiprocessing import shared_memory

        from repro.core.csr_kernels import CSRChunkKernel

        name, ptr_len, idx_len = meta
        self.shm = shared_memory.SharedMemory(name=name)
        whole = memoryview(self.shm.buf)
        ptr_bytes = ptr_len * _ITEMSIZE
        indptr = whole[:ptr_bytes].cast(_TYPECODE)
        indices = whole[ptr_bytes : ptr_bytes + idx_len * _ITEMSIZE].cast(_TYPECODE)
        self._views = (indices, indptr, whole)
        self.kernel = CSRChunkKernel(indptr, indices)

    def close(self) -> None:
        self.kernel = None
        for view in self._views:
            view.release()
        self._views = ()
        self.shm.close()


#: Process-local cache of attached graph versions, keyed by segment name.
#: Two entries cover the steady state (current version plus the tail of a
#: re-ship that raced an in-flight batch).
_WORKER_CACHE: Dict[str, _AttachedGraph] = {}
_WORKER_CACHE_LIMIT = 2


def _attached(meta: Tuple[str, int, int]) -> _AttachedGraph:
    entry = _WORKER_CACHE.get(meta[0])
    if entry is None:
        while len(_WORKER_CACHE) >= _WORKER_CACHE_LIMIT:
            _WORKER_CACHE.pop(next(iter(_WORKER_CACHE))).close()
        entry = _AttachedGraph(meta)
        _WORKER_CACHE[meta[0]] = entry
    return entry


def _decode_ids(spec) -> Iterable[int]:
    """Decode a task id spec — ``("r", lo, hi)`` range or ``("l", ids)``."""
    if spec[0] == "r":
        return range(spec[1], spec[2])
    return spec[1]


def _encode_ids(chunk: Sequence[int]):
    """Encode a chunk compactly: contiguous ascending runs ship as ranges."""
    if chunk and len(chunk) == chunk[-1] - chunk[0] + 1:
        lo = chunk[0]
        if all(chunk[i] == lo + i for i in range(len(chunk))):
            return ("r", lo, chunk[-1] + 1)
    return ("l", list(chunk))


def _score_task(meta: Tuple[str, int, int], index: int, spec):
    """Pool task: score one chunk against the worker's attached graph."""
    kernel = _attached(meta).kernel
    start = time.perf_counter()
    scores = kernel.score_chunk(_decode_ids(spec))
    return index, scores, time.perf_counter() - start


# ----------------------------------------------------------------------
# The runtime
# ----------------------------------------------------------------------
class ExecutionRuntime:
    """A lazily-created, reusable execution backend for CSR vertex chunks.

    Parameters
    ----------
    max_workers:
        Worker-pool size for the process executor (default
        ``os.cpu_count()``); also the default parallelism of the dynamic
        schedule.
    executor:
        ``"process"`` (persistent ``multiprocessing`` pool + shared-memory
        transport, the production configuration) or ``"serial"``
        (in-process execution on the snapshot's own cached structures —
        deterministic, dependency-free, used by tests and the schedule
        model).
    oversubscribe:
        Chunks per worker produced by the dynamic schedule.

    Notes
    -----
    The runtime is tied to one graph *at a time*: executing on a new
    snapshot identity re-ships the payload and retires the previous
    segment (multi-graph sharing is a ROADMAP follow-up).  Use as a
    context manager — or call :meth:`close` — to release the pool and the
    shared segment deterministically; a GC/exit finaliser backstops
    callers that forget.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        executor: "ParallelBackend | str" = ParallelBackend.PROCESS,
        oversubscribe: int = DEFAULT_OVERSUBSCRIBE,
    ) -> None:
        import os
        import weakref

        if max_workers is not None and max_workers < 1:
            raise InvalidParameterError("max_workers must be positive")
        if oversubscribe < 1:
            raise InvalidParameterError("oversubscribe must be positive")
        self.executor = ParallelBackend(executor)
        self.max_workers = max_workers or os.cpu_count() or 1
        self.oversubscribe = oversubscribe
        # Mutable holder shared with the GC finaliser: the finaliser must
        # not keep ``self`` alive, yet must see the *current* pool/payload.
        self._state: Dict[str, Any] = {"pool": None, "payload": None, "owner": None}
        self._estimates: Optional[List[float]] = None
        self._closed = False
        self._stats = RuntimeStats(
            executor=self.executor.value, max_workers=self.max_workers
        )
        self._finalizer = weakref.finalize(self, _release_state, self._state)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """``True`` once :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Shut the pool down and unlink the shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        _release_state(self._state)
        self._estimates = None

    def __enter__(self) -> "ExecutionRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExecutionRuntime(executor={self.executor.value!r}, "
            f"max_workers={self.max_workers}, ships={self._stats.payload_ships}, "
            f"closed={self._closed})"
        )

    def stats(self) -> RuntimeStats:
        """The cumulative :class:`RuntimeStats` (live object, do not mutate)."""
        return self._stats

    # ------------------------------------------------------------------
    # Transport and pool management
    # ------------------------------------------------------------------
    def _ensure_shipped(self, compact: CompactGraph) -> bool:
        """Ship ``compact`` unless it is the currently shipped version."""
        if self._state["owner"] is compact:
            return False
        # Drop the old version *and its ownership* before shipping: if the
        # new ship fails (e.g. shared memory exhausted), the runtime must
        # not believe the retired payload is still attached.
        self._state["owner"] = None
        old = self._state["payload"]
        if old is not None:
            self._state["payload"] = None
            old.close()
        if self.executor is ParallelBackend.PROCESS:
            payload = _ShippedPayload(compact)
            self._state["payload"] = payload
            self._stats.payload_bytes = payload.nbytes
        else:
            # Serial "shipping" is warming the snapshot's shared kernel
            # state once so every later chunk reuses it.
            compact.neighbor_sets()
            compact.dense_adjacency()
            self._stats.payload_bytes = (
                len(compact.indptr) + len(compact.indices)
            ) * _ITEMSIZE
        self._state["owner"] = compact
        self._estimates = None
        self._stats.payload_ships += 1
        return True

    def _ensure_pool(self) -> bool:
        """Start the worker pool if the process executor needs one."""
        if self.executor is not ParallelBackend.PROCESS:
            return False
        if self._state["pool"] is not None:
            return False
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        self._state["pool"] = context.Pool(processes=self.max_workers)
        self._stats.pool_launches += 1
        return True

    def _work_estimates(self, compact: CompactGraph) -> List[float]:
        """Per-id work estimates of the shipped graph (cached per version)."""
        if self._estimates is None:
            from repro.parallel.partition import vertex_work_estimates_csr

            self._estimates = vertex_work_estimates_csr(compact)
        return self._estimates

    def dynamic_chunks(
        self, compact: CompactGraph, ids: Sequence[int], num_workers: int
    ) -> List[List[int]]:
        """Split ``ids`` into weight-balanced contiguous id ranges.

        The dynamic schedule's unit of work: ascending id order (cache
        friendly, range-encodable) cut into ``num_workers × oversubscribe``
        chunks of approximately equal estimated work, executed via the
        pool's shared queue so idle workers steal the next chunk.
        """
        ids = sorted(ids)
        if not ids:
            return []
        estimates = self._work_estimates(compact)
        target_chunks = max(1, min(len(ids), num_workers * self.oversubscribe))
        total = sum(estimates[i] for i in ids)
        target = total / target_chunks
        chunks: List[List[int]] = []
        current: List[int] = []
        acc = 0.0
        for i in ids:
            current.append(i)
            acc += estimates[i]
            if acc >= target and len(chunks) < target_chunks - 1:
                chunks.append(current)
                current = []
                acc = 0.0
        if current:
            chunks.append(current)
        return chunks

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        compact: CompactGraph,
        chunks: Optional[Sequence[Sequence[int]]] = None,
        *,
        ids: Optional[Iterable[int]] = None,
        num_workers: Optional[int] = None,
        schedule: str = "dynamic",
    ) -> Tuple[Dict[int, float], BatchStats]:
        """Score vertex chunks of ``compact``; return ``(scores, batch)``.

        Parameters
        ----------
        compact:
            The snapshot to execute on.  A snapshot identity the runtime
            has not seen ships the payload (once per version); the same
            identity reuses the shipped arrays.
        chunks:
            An explicit static schedule (per-worker id chunks).  When
            omitted, the runtime chunks ``ids`` itself according to
            ``schedule``.
        ids:
            The dense vertex ids to score (default: every vertex).
            Ignored when ``chunks`` is given.
        num_workers:
            Parallelism used by the dynamic chunker (default
            ``max_workers``).
        schedule:
            ``"dynamic"`` (weight-balanced oversubscribed ranges, shared
            task queue) or ``"static"`` (one chunk per worker in id-range
            blocks) — only consulted when ``chunks`` is omitted.

        Returns
        -------
        The merged ``{id: score}`` map — materialised in ascending id order
        for every executor/schedule/worker count, which is what keeps every
        downstream consumer bit-identical to the serial path — plus the
        batch's :class:`BatchStats`.
        """
        if self._closed:
            raise InvalidParameterError("this ExecutionRuntime has been closed")
        if schedule not in ("dynamic", "static"):
            raise InvalidParameterError(
                f"unknown schedule {schedule!r}; use 'dynamic' or 'static'"
            )
        workers = num_workers or self.max_workers
        explicit_schedule = chunks is not None

        setup_start = time.perf_counter()
        shipped = self._ensure_shipped(compact)
        pool_started = self._ensure_pool()
        setup_seconds = time.perf_counter() - setup_start

        if chunks is None:
            if ids is None:
                ids = range(compact.num_vertices)
            if schedule == "dynamic":
                chunks = self.dynamic_chunks(compact, list(ids), workers)
            else:
                from repro.parallel.partition import block_partition

                chunks = block_partition(sorted(ids), workers)

        compute_start = time.perf_counter()
        merged: Dict[int, float] = {}
        chunk_seconds = [0.0] * len(chunks)
        tasks = [(i, chunk) for i, chunk in enumerate(chunks) if chunk]
        if self.executor is ParallelBackend.SERIAL:
            from repro.core.csr_kernels import ego_betweenness_from_arrays

            indptr, indices = compact.indptr, compact.indices
            nbr_sets = compact.neighbor_sets()
            dense = compact.dense_adjacency()
            for i, chunk in tasks:
                start = time.perf_counter()
                merged.update(
                    ego_betweenness_from_arrays(indptr, indices, chunk, nbr_sets, dense)
                )
                chunk_seconds[i] = time.perf_counter() - start
        else:
            pool = self._state["pool"]
            meta = self._state["payload"].meta
            results = [
                pool.apply_async(_score_task, (meta, i, _encode_ids(chunk)))
                for i, chunk in tasks
            ]
            for result in results:
                i, scores, seconds = result.get()
                merged.update(scores)
                chunk_seconds[i] = seconds
        merged = {pid: merged[pid] for pid in sorted(merged)}
        compute_seconds = time.perf_counter() - compute_start

        batch = BatchStats(
            num_tasks=len(tasks),
            schedule="static" if explicit_schedule else schedule,
            shipped=shipped,
            pool_started=pool_started,
            setup_seconds=setup_seconds,
            compute_seconds=compute_seconds,
            chunk_seconds=chunk_seconds,
        )
        stats = self._stats
        stats.batches += 1
        stats.tasks += len(tasks)
        stats.setup_seconds += setup_seconds
        stats.compute_seconds += compute_seconds
        if self.executor is ParallelBackend.PROCESS and not pool_started:
            stats.pool_reuses += 1
        stats.last_batch = batch
        return merged, batch


def _release_state(state: Dict[str, Any]) -> None:
    """Tear down a runtime's pool and shared segment (close/GC/exit path)."""
    pool = state.pop("pool", None)
    if pool is not None:
        pool.terminate()
        pool.join()
    payload = state.pop("payload", None)
    if payload is not None:
        payload.close()
    state["owner"] = None
    state["pool"] = None
    state["payload"] = None
