"""The asyncio micro-batching gateway: many clients, shared infrastructure.

``EgoSession`` answers one caller at a time; a service answers thousands of
concurrent callers whose requests arrive interleaved across many tenant
graphs.  :class:`ServingGateway` closes that gap with two mechanisms:

* **Micro-batching.**  Requests for one tenant that arrive within a small
  coalescing window (``window_seconds``, or earlier when ``max_batch``
  requests pile up) are answered by a *single*
  :meth:`~repro.session.EgoSession.scores_batch` pass — 64 concurrent
  clients cost one computation over the union of what they asked for, not
  64 computations.  Results resolve back to each caller's future in
  request order.
* **Shared serving infrastructure.**  Every tenant session is attached to
  the gateway's one :class:`~repro.parallel.runtime.WorkerPool` and one
  :class:`~repro.parallel.runtime.PayloadStore`, so N tenants fork one set
  of worker processes and each graph version ships exactly once, under its
  ``(graph_id, version)`` key, however the tenants' batches interleave.

Back-pressure is explicit: a tenant whose unanswered-request backlog
reaches ``max_pending`` sheds load with
:class:`~repro.errors.GatewayOverloadedError` instead of buffering without
bound.  Cancellation is safe at any point — a request cancelled while it
waits in the window is simply dropped from the batch; the remaining
requests are unaffected.

Answers are **bit-identical to the serial kernels**: batching only changes
*when* a computation runs, never what it computes (the session layer's
canonical-order guarantees carry through unchanged).

Examples
--------
>>> import asyncio
>>> from repro.serving import ServingGateway
>>> async def demo():
...     async with ServingGateway(window_seconds=0.001) as gateway:
...         gateway.add_tenant("toy", [(0, 1), (0, 2), (1, 2), (1, 3)])
...         full, one = await asyncio.gather(
...             gateway.scores("toy"), gateway.score("toy", 1)
...         )
...         return one == full[1], gateway.stats()["gateway"]["batches"]
>>> asyncio.run(demo())
(True, 1)
"""

from __future__ import annotations

import asyncio
import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.topk import TopKResult
from repro.errors import (
    CircuitOpenError,
    GatewayClosedError,
    GatewayOverloadedError,
    InvalidParameterError,
    RecoveryError,
    RequestTimeoutError,
    UnknownTenantError,
    WorkerFaultError,
)
from repro.graph.graph import Vertex
from repro.parallel.runtime import PayloadStore, WorkerPool
from repro.session import EgoSession

__all__ = ["ServingGateway", "GatewayStats"]

#: Default coalescing window: long enough to batch a burst of concurrent
#: requests, short enough to be invisible next to a kernel pass.
DEFAULT_WINDOW_SECONDS = 0.002

#: Sentinel distinguishing "no cached answer" from a cached falsy answer
#: (an empty scores map is a legitimate cache value).
_CACHE_MISS = object()


@dataclass
class GatewayStats:
    """Cumulative counters of one :class:`ServingGateway`.

    Attributes
    ----------
    requests / answered / failed:
        Score(s) requests accepted, resolved with a result, resolved with
        the batch's exception.
    cancelled:
        Requests whose caller cancelled while they waited in the window
        (dropped from the batch).
    rejected:
        Requests shed by back-pressure (``max_pending`` reached).
    batches / coalesced_requests / max_batch_size:
        Executed micro-batches, total requests they answered, and the
        largest batch observed — ``coalesced_requests / batches`` is the
        amortisation factor.
    window_flushes / size_flushes / drain_flushes:
        What triggered each flush: the coalescing window elapsing, the
        batch filling to ``max_batch``, or the gateway draining at close.
    topk_requests / topk_runs / topk_coalesced:
        Top-k requests accepted, session executions they cost, and
        requests served by piggy-backing on an identical in-flight run.
    deadline_misses:
        Requests that missed their ``request_deadline`` (the caller got
        :class:`~repro.errors.RequestTimeoutError`).
    batch_retries / batch_faults:
        Micro-batches retried once after a
        :class:`~repro.errors.WorkerFaultError`, and batches that still
        failed after the retry (every live request got the fault).
    circuit_opens / circuit_shed:
        Times a tenant's circuit breaker tripped open, and requests shed
        with :class:`~repro.errors.CircuitOpenError` while it was open.
    cache_hits / cache_misses / cache_evictions / cache_invalidations:
        The hot-key result LRU: requests answered straight from a cached
        ``(version, query-key)`` entry (zero kernel/batch work), lookups
        that fell through to a batch, entries evicted by LRU pressure, and
        whole-tenant invalidations fired by ``apply()`` version bumps.
    applies / applied_events:
        Mutation calls admitted through :meth:`ServingGateway.apply` and
        the update events they carried.
    per_tenant:
        Requests accepted per tenant id.
    """

    requests: int = 0
    answered: int = 0
    failed: int = 0
    cancelled: int = 0
    rejected: int = 0
    batches: int = 0
    coalesced_requests: int = 0
    max_batch_size: int = 0
    window_flushes: int = 0
    size_flushes: int = 0
    drain_flushes: int = 0
    topk_requests: int = 0
    topk_runs: int = 0
    topk_coalesced: int = 0
    deadline_misses: int = 0
    batch_retries: int = 0
    batch_faults: int = 0
    circuit_opens: int = 0
    circuit_shed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_invalidations: int = 0
    applies: int = 0
    applied_events: int = 0
    per_tenant: Dict[str, int] = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        """Average requests answered per executed batch (0.0 when idle)."""
        return self.coalesced_requests / self.batches if self.batches else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """Return a JSON-friendly dict (the CLI ``--json`` payload shape)."""
        return {
            "requests": self.requests,
            "answered": self.answered,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "rejected": self.rejected,
            "batches": self.batches,
            "coalesced_requests": self.coalesced_requests,
            "mean_batch_size": self.mean_batch_size,
            "max_batch_size": self.max_batch_size,
            "window_flushes": self.window_flushes,
            "size_flushes": self.size_flushes,
            "drain_flushes": self.drain_flushes,
            "topk_requests": self.topk_requests,
            "topk_runs": self.topk_runs,
            "topk_coalesced": self.topk_coalesced,
            "deadline_misses": self.deadline_misses,
            "batch_retries": self.batch_retries,
            "batch_faults": self.batch_faults,
            "circuit_opens": self.circuit_opens,
            "circuit_shed": self.circuit_shed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "cache_invalidations": self.cache_invalidations,
            "applies": self.applies,
            "applied_events": self.applied_events,
            "per_tenant": dict(self.per_tenant),
        }


class _Request:
    """One queued scores request: payload + the caller's future."""

    __slots__ = ("payload", "future")

    def __init__(self, payload: Optional[List[Vertex]], future: asyncio.Future) -> None:
        self.payload = payload
        self.future = future


class _Tenant:
    """Per-tenant serving state: session, pending batch, in-flight locks."""

    __slots__ = (
        "tenant_id",
        "session",
        "pending",
        "timer",
        "lock",
        "backlog",
        "topk_inflight",
        "circuit_state",
        "consecutive_failures",
        "circuit_open_until",
        "cache",
        "cache_version",
        "version_listener",
    )

    def __init__(self, tenant_id: str, session: EgoSession) -> None:
        self.tenant_id = tenant_id
        self.session = session
        self.pending: List[_Request] = []
        self.timer: Optional[asyncio.Task] = None
        # Serialises session execution: flushes run in worker threads and
        # EgoSession is not thread-safe, so one pass at a time per tenant.
        self.lock = asyncio.Lock()
        self.backlog = 0
        self.topk_inflight: Dict[Tuple[int, int], asyncio.Task] = {}
        # Circuit breaker over *infrastructure* failures (WorkerFaultError
        # escaping a batch after its retry): closed → open → half_open.
        self.circuit_state = "closed"
        self.consecutive_failures = 0
        self.circuit_open_until = 0.0
        # Hot-key result LRU: query-key → answer, valid for exactly one
        # topology version (cache_version); the session version listener
        # clears it the moment apply() moves the graph.
        self.cache: "OrderedDict" = OrderedDict()
        self.cache_version = session.version
        self.version_listener = None


class ServingGateway:
    """Accept concurrent async queries; answer them in coalesced batches.

    Parameters
    ----------
    window_seconds:
        The coalescing window: the first request of a batch waits at most
        this long for company before the batch executes.
    max_batch:
        Flush early once this many requests are pending for one tenant.
    max_pending:
        Back-pressure bound: a tenant whose unanswered backlog reaches
        this sheds further requests with :class:`GatewayOverloadedError`.
    parallel / engine / executor:
        How tenant batches execute — forwarded to
        :meth:`EgoSession.scores_batch` / :meth:`EgoSession.top_k`.
        ``parallel=None`` (default) answers on the session's serial
        kernels; ``parallel=N`` routes passes through each tenant's
        runtime on the gateway's shared pool.
    max_workers:
        Size of a privately created shared :class:`WorkerPool` (ignored
        when ``pool`` is given).
    pool / store:
        Existing shared infrastructure to join; ``None`` creates
        gateway-owned instances (released at :meth:`close`).
    request_deadline:
        Per-request waiting bound in seconds (``None`` — the default —
        waits without bound).  A caller whose answer has not landed
        within the deadline gets :class:`RequestTimeoutError`; the
        batch keeps computing and warms the tenant's memo for the retry.
    circuit_threshold / circuit_reset_seconds:
        Per-tenant circuit breaker: after ``circuit_threshold``
        *consecutive* micro-batches failed on infrastructure faults
        (:class:`WorkerFaultError`, after the batch's one retry), the
        tenant's circuit opens and requests are shed with
        :class:`CircuitOpenError` for ``circuit_reset_seconds``; then one
        half-open probe batch decides whether the circuit closes again.
    drain_seconds:
        Bound on the :meth:`close` drain: batches still unanswered after
        this long are cancelled and their requests failed with
        :class:`GatewayClosedError` — a broken pool cannot hang close().
    result_cache_size:
        Per-tenant hot-key result LRU capacity (``0`` — the default —
        disables caching and keeps the execution path byte-for-byte what
        it was without it).  When enabled, an answered ``scores``/
        ``top_k`` query is remembered under its ``(version, query-key)``
        and identical repeats are served with **zero kernel executions**
        until the tenant's topology version moves — every ``apply()``
        (through the gateway or directly on the session) fires the
        session's version listener and drops the tenant's entries.
        Cached hits bypass back-pressure and the circuit breaker: a
        known answer is free to serve even while the tenant sheds fresh
        work.  The network front door (:mod:`repro.net`) enables this by
        default; in-process callers opt in.

    Notes
    -----
    All request methods are coroutines and must run on one event loop; the
    compute itself runs in worker threads (and, with ``parallel=N``, the
    shared process pool), so the loop stays responsive while kernels run.
    Use as an async context manager for deterministic teardown.
    """

    def __init__(
        self,
        *,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        max_batch: int = 64,
        max_pending: int = 1024,
        parallel: Optional[int] = None,
        engine: str = "edge",
        executor: str = "serial",
        max_workers: Optional[int] = None,
        pool: Optional[WorkerPool] = None,
        store: Optional[PayloadStore] = None,
        request_deadline: Optional[float] = None,
        circuit_threshold: int = 5,
        circuit_reset_seconds: float = 1.0,
        drain_seconds: float = 5.0,
        durability_root: Optional[str] = None,
        result_cache_size: int = 0,
    ) -> None:
        if window_seconds < 0:
            raise InvalidParameterError("window_seconds must be >= 0")
        if max_batch < 1:
            raise InvalidParameterError("max_batch must be positive")
        if max_pending < 1:
            raise InvalidParameterError("max_pending must be positive")
        if request_deadline is not None and request_deadline <= 0:
            raise InvalidParameterError("request_deadline must be positive or None")
        if circuit_threshold < 1:
            raise InvalidParameterError("circuit_threshold must be positive")
        if circuit_reset_seconds <= 0:
            raise InvalidParameterError("circuit_reset_seconds must be positive")
        if drain_seconds <= 0:
            raise InvalidParameterError("drain_seconds must be positive")
        if result_cache_size < 0:
            raise InvalidParameterError("result_cache_size must be >= 0")
        self.window_seconds = window_seconds
        self.max_batch = max_batch
        self.max_pending = max_pending
        self.parallel = parallel
        self.engine = engine
        self.executor = executor
        self.request_deadline = request_deadline
        self.circuit_threshold = circuit_threshold
        self.circuit_reset_seconds = circuit_reset_seconds
        self.drain_seconds = drain_seconds
        self.durability_root = durability_root
        self.result_cache_size = result_cache_size
        self._owns_pool = pool is None
        self._pool = (pool or WorkerPool(max_workers, keep_alive=True)).acquire()
        self._owns_store = store is None
        self._store = store or PayloadStore()
        self._tenants: Dict[str, _Tenant] = {}
        self._stats = GatewayStats()
        self._inflight: set = set()
        self._outstanding: set = set()
        self._closed = False

    # ------------------------------------------------------------------
    # Tenants
    # ------------------------------------------------------------------
    def add_tenant(
        self,
        tenant_id: str,
        source,
        *,
        backend: str = "auto",
        scale: Optional[float] = None,
        **session_options,
    ) -> EgoSession:
        """Register a tenant graph; returns its :class:`EgoSession`.

        ``source`` is anything :class:`EgoSession` accepts — or an existing
        session to adopt.  The tenant's parallel runtime is attached to the
        gateway's shared pool and payload store, its payloads keyed by the
        session's ``graph_id``, so tenants never re-ship each other's
        graphs away.  On a gateway-owned store the ``graph_id`` defaults to
        ``tenant_id`` (unique within this gateway); on a caller-shared
        store the session keeps its unique auto id — name tenants'
        ``graph_id=`` explicitly there to opt into same-graph payload
        dedup across gateways.

        On a gateway constructed with ``durability_root=``, every tenant
        built here (not adopted sessions — they own their lifecycle) is
        **durable by default**: its session gets
        ``durability=<root>/<tenant_id>``, so acknowledged ``apply()``
        traffic survives gateway-process death and
        :meth:`recover_tenant` restores it.  Pass ``durability=None``
        explicitly to opt a tenant out, or ``durability=<dir>`` to place
        one elsewhere.
        """
        if self._closed:
            raise GatewayClosedError("cannot add a tenant to a closed gateway")
        if tenant_id in self._tenants:
            raise InvalidParameterError(f"tenant {tenant_id!r} is already registered")
        if isinstance(source, EgoSession):
            session = source
        else:
            if self._owns_store:
                # Tenant ids are unique within this gateway and the store
                # is private to it, so keying payloads by tenant id is
                # safe.  A caller-shared store may span gateways whose
                # tenant names collide on DIFFERENT graphs — there the
                # session keeps its unique auto id, and same-graph dedup
                # stays the caller's explicit graph_id= opt-in.
                session_options.setdefault("graph_id", tenant_id)
            if self.durability_root is not None:
                session_options.setdefault(
                    "durability", os.path.join(self.durability_root, tenant_id)
                )
            session = EgoSession(source, backend=backend, scale=scale, **session_options)
        if self.parallel is not None:
            # Install the session's runtime for the gateway's executor now,
            # bound to the shared infrastructure, so the first batch does
            # not silently create a private pool instead.
            runtime = session.runtime(
                self.executor,
                max_workers=self._pool.max_workers,
                pool=self._pool,
                store=self._store,
            )
            if runtime.pool is not self._pool or runtime.store is not self._store:
                # An adopted session already held a runtime for this
                # executor: it would fork its own pool and ship into a
                # private store, silently breaking the one-pool invariant.
                raise InvalidParameterError(
                    f"session for tenant {tenant_id!r} already owns a "
                    f"{self.executor!r} runtime not attached to the "
                    "gateway's shared pool/store; close() the session's "
                    "runtimes first or register a fresh session"
                )
            if self.executor == "process":
                # Fork the shared pool now, on the event-loop thread,
                # before any batch runs inside a ThreadPoolExecutor worker
                # — forking a multi-threaded process risks inheriting held
                # locks in the child.
                self._pool.ensure_started()
        tenant = _Tenant(tenant_id, session)
        # Version-keyed cache hook: every apply() — through the gateway or
        # directly on the session — drops this tenant's hot-key entries.
        tenant.version_listener = partial(self._invalidate_tenant_cache, tenant)
        session.add_version_listener(tenant.version_listener)
        self._tenants[tenant_id] = tenant
        return session

    def tenant(self, tenant_id: str) -> EgoSession:
        """The registered session for ``tenant_id``."""
        return self._require(tenant_id).session

    def recover_tenant(self, tenant_id: str, directory: Optional[str] = None, **kwargs) -> EgoSession:
        """Restore a durable tenant from its durability directory.

        ``directory`` defaults to ``<durability_root>/<tenant_id>`` — the
        layout :meth:`add_tenant` uses on a durable gateway.  The
        recovered session (newest checkpoint + WAL tail replay, log
        re-attached) is registered exactly like an adopted session;
        keyword arguments go to :meth:`EgoSession.recover`.  Raises
        :class:`~repro.errors.RecoveryError` when no directory can be
        derived or it holds no valid checkpoint.
        """
        if directory is None:
            if self.durability_root is None:
                raise RecoveryError(
                    f"cannot derive a durability directory for tenant "
                    f"{tenant_id!r}: this gateway has no durability_root "
                    "and no directory= was given"
                )
            directory = os.path.join(self.durability_root, tenant_id)
        kwargs.setdefault("graph_id", tenant_id if self._owns_store else None)
        if kwargs.get("graph_id") is None:
            kwargs.pop("graph_id", None)
        session = EgoSession.recover(directory, **kwargs)
        return self.add_tenant(tenant_id, session)

    def tenants(self) -> List[str]:
        """The registered tenant ids."""
        return list(self._tenants)

    def _require(self, tenant_id: str) -> _Tenant:
        tenant = self._tenants.get(tenant_id)
        if tenant is None:
            raise UnknownTenantError(tenant_id)
        return tenant

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    async def scores(
        self, tenant_id: str, vertices: Optional[Iterable[Vertex]] = None
    ) -> Dict[Vertex, float]:
        """Exact ego-betweenness of every vertex (or a subset) of a tenant.

        The request joins the tenant's current micro-batch; the returned
        map is bit-identical to :meth:`EgoSession.scores` on the same
        state.
        """
        request = None if vertices is None else list(vertices)
        return await self._submit(tenant_id, request)

    async def score(self, tenant_id: str, vertex: Vertex) -> float:
        """Exact ego-betweenness of one vertex (micro-batched)."""
        answer = await self._submit(tenant_id, [vertex])
        return answer[vertex]

    async def stream(self, tenant_id: str, queries: Iterable[Optional[Iterable[Vertex]]]):
        """Submit many scores queries; yield the answers in request order.

        The queries coalesce into batches exactly as concurrent callers
        would; answers stream back as their batches complete, preserving
        the input order.  Abandoning the stream early — breaking out of
        the loop, or a yielded error — cancels the not-yet-consumed
        requests and retrieves their outcomes, so no orphaned task keeps
        computing (or logs an unretrieved exception) for an answer nobody
        will read.
        """
        tasks = [
            asyncio.ensure_future(self.scores(tenant_id, query)) for query in queries
        ]
        try:
            for task in tasks:
                yield await task
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

    async def top_k(self, tenant_id: str, k: int) -> TopKResult:
        """The tenant's top-k ego-betweenness ranking.

        Identical concurrent requests (same tenant, same ``k``) coalesce
        onto one session execution; the entries are bit-identical to the
        serial naive ranking (``EgoSession.top_k`` guarantees this for
        every execution path).
        """
        tenant = self._require(tenant_id)
        if self._closed:
            raise GatewayClosedError("this gateway has been closed")
        stats = self._stats
        if self.result_cache_size:
            cached = self._cache_lookup(tenant, ("top_k", k))
            if cached is not _CACHE_MISS:
                stats.topk_requests += 1
                stats.per_tenant[tenant_id] = stats.per_tenant.get(tenant_id, 0) + 1
                return cached
        self._check_circuit(tenant)
        if tenant.backlog >= self.max_pending:
            # top-k traffic obeys the same back-pressure bound as scores
            # traffic: an overloaded tenant sheds load on every door.
            stats.rejected += 1
            raise GatewayOverloadedError(
                f"tenant {tenant_id!r} has {tenant.backlog} unanswered requests "
                f"(max_pending={self.max_pending}); shed load and retry"
            )
        stats.topk_requests += 1
        stats.per_tenant[tenant_id] = stats.per_tenant.get(tenant_id, 0) + 1
        # Keyed by (version, k): a request arriving after a mutation must
        # not be coalesced onto an in-flight pre-mutation run.
        key = (tenant.session.version, k)
        task = tenant.topk_inflight.get(key)
        if task is None:
            stats.topk_runs += 1
            task = asyncio.ensure_future(self._run_top_k(tenant, k))
            tenant.topk_inflight[key] = task
            task.add_done_callback(lambda _: tenant.topk_inflight.pop(key, None))
        else:
            stats.topk_coalesced += 1
        # Shield the shared run: one caller cancelling must not tear the
        # result away from the others riding the same execution.  Each
        # waiting caller occupies one backlog slot until its answer lands.
        tenant.backlog += 1
        try:
            return await self._await_with_deadline(
                asyncio.shield(task), tenant.tenant_id
            )
        finally:
            tenant.backlog -= 1

    async def apply(self, tenant_id: str, events) -> int:
        """Apply edge updates to a tenant through the gateway; return the count.

        The mutation serialises with the tenant's batches on the tenant
        lock (``EgoSession`` is not thread-safe) and runs in a worker
        thread, so the event loop keeps answering other tenants while the
        update lands.  Applied events bump the session version, which
        fires the version listener and invalidates the tenant's hot-key
        result cache — the next identical query recomputes on the new
        topology.  Mutations are **never** admitted from cache and never
        retried by any client layer: they are not idempotent.
        """
        tenant = self._require(tenant_id)
        if self._closed:
            raise GatewayClosedError("this gateway has been closed")
        loop = asyncio.get_running_loop()
        async with tenant.lock:
            applied = await loop.run_in_executor(
                None, partial(tenant.session.apply, events)
            )
        self._stats.applies += 1
        self._stats.applied_events += applied
        return applied

    async def _await_with_deadline(self, awaitable, tenant_id: str):
        """Await, bounded by ``request_deadline`` when one is configured.

        A miss releases the *caller* with :class:`RequestTimeoutError`;
        the underlying computation keeps running (shielded runs finish and
        warm the memo for the retry).
        """
        if self.request_deadline is None:
            return await awaitable
        try:
            return await asyncio.wait_for(awaitable, self.request_deadline)
        except asyncio.TimeoutError:
            self._stats.deadline_misses += 1
            raise RequestTimeoutError(
                f"request for tenant {tenant_id!r} missed its "
                f"{self.request_deadline}s deadline"
            ) from None

    async def _run_top_k(self, tenant: _Tenant, k: int) -> TopKResult:
        loop = asyncio.get_running_loop()
        async with tenant.lock:
            if self.parallel is not None:
                call = partial(
                    tenant.session.top_k,
                    k,
                    parallel=self.parallel,
                    engine=self.engine,
                    executor=self.executor,
                )
            else:
                call = partial(tenant.session.top_k, k, algorithm="naive")
            result = await loop.run_in_executor(None, call)
            # Version read under the tenant lock: no batch/apply can have
            # interleaved, so the answer belongs to exactly this version.
            version = tenant.session.version
        self._cache_store(tenant, version, ("top_k", k), result)
        return result

    async def _submit(
        self, tenant_id: str, request: Optional[List[Vertex]]
    ) -> Dict[Vertex, float]:
        tenant = self._require(tenant_id)
        if self._closed:
            raise GatewayClosedError("this gateway has been closed")
        stats = self._stats
        cache_key: Optional[Tuple] = None
        if self.result_cache_size:
            try:
                cache_key = self._cache_key(request)
            except TypeError:
                cache_key = None  # unhashable vertex: the batch will raise
            cached = self._cache_lookup(tenant, cache_key)
            if cached is not _CACHE_MISS:
                # A known answer is free: serve it even while the tenant
                # sheds fresh work (no circuit/back-pressure, no backlog
                # slot, zero kernel executions).
                stats.requests += 1
                stats.answered += 1
                stats.per_tenant[tenant_id] = stats.per_tenant.get(tenant_id, 0) + 1
                return dict(cached)
        self._check_circuit(tenant)
        if tenant.backlog >= self.max_pending:
            stats.rejected += 1
            raise GatewayOverloadedError(
                f"tenant {tenant_id!r} has {tenant.backlog} unanswered requests "
                f"(max_pending={self.max_pending}); shed load and retry"
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        tenant.pending.append(_Request(request, future))
        tenant.backlog += 1
        future.add_done_callback(partial(self._request_done, tenant))
        self._outstanding.add(future)
        future.add_done_callback(self._outstanding.discard)
        stats.requests += 1
        stats.per_tenant[tenant_id] = stats.per_tenant.get(tenant_id, 0) + 1
        if len(tenant.pending) >= self.max_batch:
            batch = self._take_batch(tenant)
            task = asyncio.ensure_future(self._run_batch(tenant, batch, "size"))
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)
        elif len(tenant.pending) == 1:
            tenant.timer = asyncio.ensure_future(self._window_flush(tenant))
        return await self._await_with_deadline(future, tenant_id)

    def _request_done(self, tenant: _Tenant, future: asyncio.Future) -> None:
        tenant.backlog -= 1
        if future.cancelled():
            return
        if future.exception() is not None:
            self._stats.failed += 1
        else:
            self._stats.answered += 1

    # ------------------------------------------------------------------
    # Circuit breaker
    # ------------------------------------------------------------------
    def _check_circuit(self, tenant: _Tenant) -> None:
        """Shed the request if the tenant's circuit is open.

        An open circuit whose reset window has elapsed moves to
        ``half_open``: the request is admitted as the probe, and its
        batch's outcome decides whether the circuit closes or re-opens.
        """
        if tenant.circuit_state != "open":
            return
        if time.monotonic() < tenant.circuit_open_until:
            self._stats.rejected += 1
            self._stats.circuit_shed += 1
            raise CircuitOpenError(
                f"tenant {tenant.tenant_id!r} circuit is open after "
                f"{tenant.consecutive_failures} consecutive infrastructure "
                f"failures; shedding load for up to "
                f"{self.circuit_reset_seconds}s, then probing"
            )
        tenant.circuit_state = "half_open"

    def _batch_ok(self, tenant: _Tenant) -> None:
        """A batch executed on healthy machinery: close/keep the circuit."""
        tenant.consecutive_failures = 0
        if tenant.circuit_state != "closed":
            tenant.circuit_state = "closed"

    def _batch_fault(self, tenant: _Tenant, fault: WorkerFaultError) -> None:
        """An infrastructure fault escaped a batch (after its retry)."""
        tenant.consecutive_failures += 1
        reopen = tenant.circuit_state == "half_open"
        trip = (
            tenant.circuit_state == "closed"
            and tenant.consecutive_failures >= self.circuit_threshold
        )
        if reopen or trip:
            tenant.circuit_state = "open"
            tenant.circuit_open_until = time.monotonic() + self.circuit_reset_seconds
            self._stats.circuit_opens += 1

    # ------------------------------------------------------------------
    # Hot-key result cache
    # ------------------------------------------------------------------
    @staticmethod
    def _cache_key(request: Optional[List[Vertex]]) -> Tuple:
        """The query key a scores request caches under.

        A full-map request is ``("scores", None)``; a subset request keys
        on the *set* of vertices, so permutations of one subset share an
        entry (the answer is a map — order never shows).  Raises
        ``TypeError`` on unhashable vertices; callers skip caching then
        and let the batch path surface the proper error.
        """
        if request is None:
            return ("scores", None)
        return ("scores", frozenset(request))

    def _invalidate_tenant_cache(self, tenant: _Tenant, version: int) -> None:
        """Session version listener: the topology moved, drop everything."""
        if tenant.cache:
            tenant.cache.clear()
            self._stats.cache_invalidations += 1
        tenant.cache_version = version

    def _cache_lookup(self, tenant: _Tenant, key: Optional[Tuple]):
        """Return the cached answer for ``key`` or :data:`_CACHE_MISS`.

        Ticks the hit/miss counters.  A stale epoch (the session's version
        moved without the listener firing — defensive only, the listener
        is registered for every tenant) clears the entries first.
        """
        if not self.result_cache_size or key is None:
            return _CACHE_MISS
        if tenant.cache_version != tenant.session.version:
            self._invalidate_tenant_cache(tenant, tenant.session.version)
        value = tenant.cache.get(key, _CACHE_MISS)
        if value is _CACHE_MISS:
            self._stats.cache_misses += 1
            return _CACHE_MISS
        tenant.cache.move_to_end(key)
        self._stats.cache_hits += 1
        return value

    def _cache_store(
        self, tenant: _Tenant, version: int, key: Optional[Tuple], value
    ) -> None:
        """Remember ``key → value`` computed at ``version`` (LRU-bounded).

        Silently skipped when the tenant's topology moved while the
        answer was computing — a stale answer must never enter the cache.
        """
        if not self.result_cache_size or key is None:
            return
        if tenant.cache_version != version or tenant.session.version != version:
            return
        cache = tenant.cache
        cache[key] = value
        cache.move_to_end(key)
        while len(cache) > self.result_cache_size:
            cache.popitem(last=False)
            self._stats.cache_evictions += 1

    # ------------------------------------------------------------------
    # Batching
    # ------------------------------------------------------------------
    def _take_batch(self, tenant: _Tenant) -> List[_Request]:
        """Atomically claim the pending batch and disarm the window timer."""
        batch, tenant.pending = tenant.pending, []
        if tenant.timer is not None:
            tenant.timer.cancel()
            tenant.timer = None
        return batch

    async def _window_flush(self, tenant: _Tenant) -> None:
        try:
            await asyncio.sleep(self.window_seconds)
        except asyncio.CancelledError:
            return
        if tenant.timer is not asyncio.current_task():
            # A size flush claimed the batch between our wake-up and this
            # resumption (and may have armed a fresh timer) — stand down.
            return
        tenant.timer = None
        batch = self._take_batch(tenant)
        # Execute through a tracked task, exactly like size flushes, so
        # close() awaits an in-progress window batch instead of tearing
        # the pool down under it.
        task = asyncio.ensure_future(self._run_batch(tenant, batch, "window"))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)
        await task

    async def _run_batch(
        self, tenant: _Tenant, batch: List[_Request], trigger: str
    ) -> None:
        live = [request for request in batch if not request.future.cancelled()]
        self._stats.cancelled += len(batch) - len(live)
        if not live:
            return
        loop = asyncio.get_running_loop()
        async with tenant.lock:
            call = partial(
                tenant.session.scores_batch,
                [request.payload for request in live],
                parallel=self.parallel,
                engine=self.engine,
                executor=self.executor,
            )
            try:
                answers = await self._execute_batch(loop, call, tenant, len(live))
            except Exception:  # noqa: BLE001 - isolated per request below
                # One bad request (e.g. an unknown vertex) must not poison
                # the coalesced batch: fall back to answering each request
                # on its own, so only the offending callers see the error.
                # The shared computation is already memoised on the
                # session, so the re-slicing passes are cheap.
                answers = []
                for request in live:
                    single = partial(
                        tenant.session.scores_batch,
                        [request.payload],
                        parallel=self.parallel,
                        engine=self.engine,
                        executor=self.executor,
                    )
                    try:
                        answers.append((await loop.run_in_executor(None, single))[0])
                    except Exception as error:  # noqa: BLE001 - that caller's
                        answers.append(error)
            batch_version = tenant.session.version
        stats = self._stats
        stats.batches += 1
        stats.coalesced_requests += len(live)
        stats.max_batch_size = max(stats.max_batch_size, len(live))
        if trigger == "window":
            stats.window_flushes += 1
        elif trigger == "size":
            stats.size_flushes += 1
        else:
            stats.drain_flushes += 1
        for request, answer in zip(live, answers):
            if not isinstance(answer, Exception) and self.result_cache_size:
                try:
                    key = self._cache_key(request.payload)
                except TypeError:
                    key = None
                # Cache a private copy: the caller gets (and may mutate)
                # the original dict; hits hand out fresh copies too.
                self._cache_store(tenant, batch_version, key, dict(answer))
            if request.future.done():
                continue
            if isinstance(answer, Exception):
                request.future.set_exception(answer)
            else:
                request.future.set_result(answer)

    async def _execute_batch(
        self, loop, call, tenant: _Tenant, live_count: int
    ) -> List[Any]:
        """Run one coalesced pass, retrying once on infrastructure faults.

        A :class:`WorkerFaultError` means the machinery — not any request —
        failed; the computation is idempotent, so the whole batch retries
        once (the session/runtime may have respawned the pool meanwhile).
        A second fault is definitive: every live request fails with it and
        the tenant's circuit accounting is charged.  Any other exception
        propagates to the caller's per-request isolation and never touches
        the circuit.
        """
        try:
            answers = await loop.run_in_executor(None, call)
        except WorkerFaultError:
            self._stats.batch_retries += 1
            try:
                answers = await loop.run_in_executor(None, call)
            except WorkerFaultError as fault:
                self._stats.batch_faults += 1
                self._batch_fault(tenant, fault)
                return [fault] * live_count
        self._batch_ok(tenant)
        return answers

    # ------------------------------------------------------------------
    # Lifecycle and introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """A JSON-friendly snapshot: gateway, tenants, store and pool."""
        return {
            "gateway": self._stats.as_dict(),
            "config": {
                "window_seconds": self.window_seconds,
                "max_batch": self.max_batch,
                "max_pending": self.max_pending,
                "parallel": self.parallel,
                "engine": self.engine,
                "executor": self.executor,
                "request_deadline": self.request_deadline,
                "circuit_threshold": self.circuit_threshold,
                "circuit_reset_seconds": self.circuit_reset_seconds,
                "drain_seconds": self.drain_seconds,
                "result_cache_size": self.result_cache_size,
            },
            "tenants": {
                tenant_id: {
                    **tenant.session.stats().as_dict(),
                    "circuit_state": tenant.circuit_state,
                    "consecutive_failures": tenant.consecutive_failures,
                    "cache_entries": len(tenant.cache),
                    "version": tenant.session.version,
                }
                for tenant_id, tenant in self._tenants.items()
            },
            "store": self._store.stats(),
            "pool": {
                "max_workers": self._pool.max_workers,
                "started": self._pool.started,
                "launches": self._pool.launches,
                "references": self._pool.references,
            },
        }

    @property
    def closed(self) -> bool:
        """``True`` once :meth:`close` has run."""
        return self._closed

    async def close(self) -> None:
        """Drain pending batches, close tenant sessions, release the pool.

        Pending requests are *answered* (one final drain flush per tenant)
        rather than failed; new requests raise :class:`GatewayClosedError`.
        The drain is bounded by ``drain_seconds``: work still unanswered
        when the bound elapses (e.g. because the pool is broken or a
        worker is wedged) is cancelled and the residual requests fail
        with a descriptive :class:`GatewayClosedError` — close() cannot
        hang.  Shared infrastructure passed in by the caller survives —
        only the gateway's own references are released.
        """
        if self._closed:
            return
        self._closed = True
        for tenant in self._tenants.values():
            if tenant.pending:
                task = asyncio.ensure_future(
                    self._run_batch(tenant, self._take_batch(tenant), "drain")
                )
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)
        waiters = list(self._inflight)
        for tenant in self._tenants.values():
            waiters.extend(tenant.topk_inflight.values())
        if waiters:
            _, unfinished = await asyncio.wait(waiters, timeout=self.drain_seconds)
            for task in unfinished:
                task.cancel()
            # Retrieve every outcome (including the cancellations we just
            # forced) so no task logs an unretrieved exception.
            await asyncio.gather(*waiters, return_exceptions=True)
        for future in list(self._outstanding):
            if not future.done():
                future.set_exception(
                    GatewayClosedError(
                        "gateway closed before this request was answered: "
                        f"the close() drain bound ({self.drain_seconds}s) "
                        "elapsed or the request's batch was torn down"
                    )
                )
        self._outstanding.clear()
        for tenant in self._tenants.values():
            if tenant.version_listener is not None:
                tenant.session.remove_version_listener(tenant.version_listener)
                tenant.version_listener = None
            try:
                tenant.session.close()
            except Exception:  # noqa: BLE001 - teardown must reach the pool
                # A tenant whose runtime/pool is broken must not stop the
                # remaining sessions and the shared pool from closing.
                pass
        if self._owns_store:
            self._store.close()
        self._pool.release()
        if self._owns_pool:
            self._pool.close()

    async def __aenter__(self) -> "ServingGateway":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServingGateway(tenants={len(self._tenants)}, "
            f"window={self.window_seconds}, parallel={self.parallel}, "
            f"closed={self._closed})"
        )
