"""Async load generator for the serving gateway — the zero-to-qps driver.

:func:`run_serving_benchmark` measures the serving-layer headline: a fleet
of concurrent async clients spread over several tenant graphs, answered by
one warm :class:`~repro.serving.gateway.ServingGateway` (micro-batching,
shared worker pool, per-``(graph_id, version)`` payload store), against the
**pre-gateway baseline** — one fresh session per query, serially, which is
exactly what independent clients cost before the serving layer existed.

Every answer from both runs is checked bit-identical to the serial kernel
oracle before any number is reported.  The JSON payload shape is shared by
the ``serve`` CLI subcommand, ``benchmarks/bench_serving.py`` (the
acceptance gate) and ``benchmarks/smoke.py`` (``BENCH_serving.json``).
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Any, Dict, List, Optional, Tuple

from repro import faults
from repro.core.csr_kernels import all_ego_betweenness_csr
from repro.errors import InvalidParameterError
from repro.graph.csr import CompactGraph
from repro.serving.gateway import ServingGateway
from repro.serving.metrics import percentiles
from repro.session import EgoSession

__all__ = ["run_serving_benchmark"]


def _request_plan(
    tenants: Dict[str, CompactGraph],
    clients: int,
    requests_per_client: int,
    subset_every: int,
    seed: int,
) -> List[List[Tuple[str, Optional[list]]]]:
    """Per-client request schedules: mostly full maps, some subset slices.

    Clients are spread round-robin over the tenants; every ``subset_every``-th
    client asks for a deterministic random vertex slice instead of the full
    map, so batches exercise the union/coalescing path too.
    """
    rng = random.Random(seed)
    names = list(tenants)
    plan: List[List[Tuple[str, Optional[list]]]] = []
    for client in range(clients):
        tenant_id = names[client % len(names)]
        labels = tenants[tenant_id].labels
        schedule = []
        for _ in range(requests_per_client):
            if subset_every and client % subset_every == 0:
                size = max(1, len(labels) // max(clients, 1))
                schedule.append((tenant_id, rng.sample(labels, min(size, len(labels)))))
            else:
                schedule.append((tenant_id, None))
        plan.append(schedule)
    return plan


def _check_answer(answer, request, oracle) -> None:
    expected = oracle if request is None else {v: oracle[v] for v in request}
    if answer != expected:
        raise AssertionError(
            "serving answer diverged from the serial kernel oracle"
        )


def run_serving_benchmark(
    graphs: Dict[str, Any],
    *,
    clients: int = 64,
    requests_per_client: int = 1,
    subset_every: int = 4,
    window_seconds: float = 0.002,
    max_batch: int = 64,
    parallel: Optional[int] = 1,
    executor: str = "process",
    seed: int = 7,
    fault_plan: Optional["faults.FaultPlan"] = None,
    task_deadline: Optional[float] = None,
    request_deadline: Optional[float] = None,
    durability_root: Optional[str] = None,
    kernel: str = "auto",
    shards: int = 0,
    partitioner: str = "auto",
) -> Dict[str, Any]:
    """Cold per-query baseline vs warm gateway under concurrent async load.

    Parameters
    ----------
    graphs:
        ``{tenant_id: graph}`` — anything with ``to_compact()`` or a
        :class:`CompactGraph`; each becomes one gateway tenant.
    clients / requests_per_client:
        The async fleet: ``clients`` concurrent coroutines, each issuing
        ``requests_per_client`` scores requests against its tenant.
    subset_every:
        Every n-th client requests a vertex slice instead of the full map
        (0 disables subsets).
    window_seconds / max_batch / parallel / executor:
        Gateway configuration (see :class:`ServingGateway`).
    seed:
        RNG seed for the subset slices.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` installed around the
        *warm* phase (priming included) — the chaos mode of
        ``repro serve --chaos`` and ``BENCH_chaos.json``.  The cold
        baseline and the oracles always run fault-free; every answer is
        still checked bit-identical, so the number reported is the
        throughput of the *recovered* gateway.  The injected-fault counts
        are returned under ``"faults"``, and the drawn-vs-performed
        breakdown (:meth:`~repro.faults.FaultPlan.summary`) under
        ``"fault_summary"``.
    task_deadline:
        Per-task supervision deadline forwarded to every tenant session
        (``None`` keeps the runtime default) — pair with a plan's
        ``delay_every`` to exercise the deadline-miss recovery path.
    request_deadline:
        Gateway per-request waiting bound (``None`` waits without bound).
    durability_root:
        Optional directory handed to the gateway as its ``durability_root``
        (``repro serve --wal-dir``): every tenant then runs durable —
        write-ahead logged and checkpointed under
        ``<durability_root>/<tenant_id>`` — and the payload reports the
        per-tenant durability counters alongside the serving numbers.
    kernel:
        Kernel tier for every session the benchmark creates — the cold
        baseline sessions and each gateway tenant (see
        :class:`~repro.session.EgoSession`).  The oracles stay on the
        serial python kernels, so bit-identity is still checked across
        tiers.
    shards / partitioner:
        Sharding negotiation for every gateway tenant (``repro serve
        --shards/--partitioner``): ``shards=N`` fans each tenant's
        parallel sweeps out across N halo-augmented shard payloads.  The
        cold baseline and the oracles stay unsharded, so bit-identity is
        checked across the sharding boundary too.

    Returns
    -------
    The JSON payload: ``cold`` (fresh session per query, serial — the
    one-session-one-pool model this PR retires), ``warm`` (gateway steady
    state after one priming pass per tenant), both with qps and p50/p95
    latency, plus the gateway/store/pool accounting and the bit-identity
    verdict (an :class:`AssertionError` is raised before any number is
    reported if an answer diverges from the serial kernels).
    """
    if clients < 1 or requests_per_client < 1:
        raise InvalidParameterError("clients and requests_per_client must be positive")
    if not graphs:
        raise InvalidParameterError("at least one tenant graph is required")
    tenants = {
        name: graph if isinstance(graph, CompactGraph) else graph.to_compact()
        for name, graph in graphs.items()
    }
    oracles = {name: all_ego_betweenness_csr(cg) for name, cg in tenants.items()}
    plan = _request_plan(tenants, clients, requests_per_client, subset_every, seed)
    total_requests = clients * requests_per_client

    # ------------------------------------------------------------------
    # Cold baseline: one fresh session per query, answered serially.
    # ------------------------------------------------------------------
    cold_latencies: List[float] = []
    cold_start = time.perf_counter()
    for schedule in plan:
        for tenant_id, request in schedule:
            begin = time.perf_counter()
            answer = EgoSession(tenants[tenant_id], kernel=kernel).scores(
                vertices=request
            )
            cold_latencies.append(time.perf_counter() - begin)
            _check_answer(answer, request, oracles[tenant_id])
    cold_seconds = time.perf_counter() - cold_start

    # ------------------------------------------------------------------
    # Warm gateway: shared pool/store, micro-batching, memoised tenants.
    # ------------------------------------------------------------------
    async def drive() -> Dict[str, Any]:
        gateway_options: Dict[str, Any] = {}
        if request_deadline is not None:
            gateway_options["request_deadline"] = request_deadline
        session_options: Dict[str, Any] = {"kernel": kernel}
        if task_deadline is not None:
            session_options["task_deadline"] = task_deadline
        if shards:
            session_options["shards"] = shards
            session_options["partitioner"] = partitioner
        async with ServingGateway(
            window_seconds=window_seconds,
            max_batch=max_batch,
            parallel=parallel,
            executor=executor,
            durability_root=durability_root,
            **gateway_options,
        ) as gateway:
            for name, compact in tenants.items():
                gateway.add_tenant(name, compact, **session_options)
            # Priming pass: one full-map request per tenant pays the pool
            # launch, the payload ship and the first kernel sweep — the
            # steady state a long-lived service runs in.
            for name in tenants:
                _check_answer(await gateway.scores(name), None, oracles[name])

            latencies: List[float] = []

            async def client(schedule) -> None:
                for tenant_id, request in schedule:
                    begin = time.perf_counter()
                    answer = await gateway.scores(tenant_id, request)
                    latencies.append(time.perf_counter() - begin)
                    _check_answer(answer, request, oracles[tenant_id])

            begin = time.perf_counter()
            await asyncio.gather(*(client(schedule) for schedule in plan))
            elapsed = time.perf_counter() - begin
            return {
                "seconds": elapsed,
                "latencies": latencies,
                "stats": gateway.stats(),
            }

    if fault_plan is not None:
        # Chaos mode: the plan is live for the whole warm phase — the
        # priming pass included, so ship corruption hits the real ship.
        with faults.inject(fault_plan):
            warm = asyncio.run(drive())
    else:
        warm = asyncio.run(drive())
    warm_seconds = warm["seconds"]
    gateway_stats = warm["stats"]

    payload = {
        "bench": "serving",
        "unit": "queries per second",
        "tenants": sorted(tenants),
        "clients": clients,
        "requests_per_client": requests_per_client,
        "total_requests": total_requests,
        "window_seconds": window_seconds,
        "parallel": parallel,
        "executor": executor,
        "kernel": kernel,
        "shards": shards,
        "partitioner": partitioner,
        "bit_identical": True,  # _check_answer raised otherwise
        "cold": {
            "seconds": cold_seconds,
            "qps": total_requests / cold_seconds if cold_seconds else float("inf"),
            "mean_s": cold_seconds / total_requests,
            **percentiles(cold_latencies),
        },
        "warm": {
            "seconds": warm_seconds,
            "qps": total_requests / warm_seconds if warm_seconds else float("inf"),
            "mean_s": warm_seconds / total_requests,
            **percentiles(warm["latencies"]),
        },
        "speedup_warm_vs_cold": (
            cold_seconds / warm_seconds if warm_seconds else float("inf")
        ),
        "gateway": gateway_stats["gateway"],
        "tenant_stats": gateway_stats["tenants"],
        "store": gateway_stats["store"],
        "pool": gateway_stats["pool"],
    }
    if durability_root is not None:
        # Durable tenants: the per-tenant durability counters already ride
        # along in tenant_stats; this key records where the WALs live.
        payload["durability_root"] = durability_root
    if fault_plan is not None:
        payload["faults"] = fault_plan.stats()
        # Drawn vs performed, per fault kind — which injections actually
        # fired (worker-side actions appear as drawn; the supervision
        # counters above are their witness).  Part of the
        # ``repro serve --chaos --json`` contract.
        payload["fault_summary"] = fault_plan.summary()
    return payload
