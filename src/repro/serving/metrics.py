"""Shared latency/percentile math and the canonical bench-JSON shape.

Before this module, three copies of the same helpers had grown side by
side: ``serving/loadgen.py`` computed p50/p95 with a hard-coded
``statistics.quantiles`` call, ``benchmarks/smoke.py`` had its own
mean/median summariser and artifact-writing loop, and
``benchmarks/bench_serving.py`` hand-rolled its JSON dump.  They are all
here now, with one generalisation the SLO harness needs: arbitrary
quantile points (p99 included).

Canonical bench-JSON shape
--------------------------
Every benchmark artifact (``BENCH_*.json``) is one JSON object with at
least:

* ``bench`` — short name of the benchmark,
* ``unit`` — what the per-backend numbers measure,
* ``backends`` — ``{name: {"mean_s": float, ...}}``, one entry per
  compared configuration,
* one ``speedup_*`` (or ``retention_*``) headline ratio.

:func:`write_bench_artifact` validates that shape, stamps the
environment, and writes the file; :func:`bench_summary_line` renders the
one-line console summary.

Examples
--------
>>> summary = percentiles([0.001 * i for i in range(1, 101)])
>>> sorted(summary)
['p50_ms', 'p95_ms', 'p99_ms']
>>> round(summary["p50_ms"], 3)
50.5
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.errors import InvalidParameterError

__all__ = [
    "quantile",
    "percentiles",
    "bench_json",
    "write_bench_artifact",
    "bench_summary_line",
]

#: The default latency points every serving/SLO report carries.
DEFAULT_POINTS: Tuple[float, ...] = (50.0, 95.0, 99.0)


def quantile(ordered: Sequence[float], q: float) -> float:
    """The ``q``-quantile (``0 <= q <= 1``) of an ascending-sorted sequence.

    Linear interpolation between closest ranks (the "inclusive" method of
    :func:`statistics.quantiles`, and numpy's default) so results are
    continuous in the sample values.  Raises on an empty sequence.

    >>> quantile([1.0, 2.0, 3.0, 4.0], 0.5)
    2.5
    >>> quantile([7.0], 0.99)
    7.0
    """
    if not ordered:
        raise InvalidParameterError("cannot take a quantile of no samples")
    if not 0.0 <= q <= 1.0:
        raise InvalidParameterError(f"quantile must be in [0, 1], got {q!r}")
    position = (len(ordered) - 1) * q
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def percentiles(
    samples: Sequence[float],
    points: Sequence[float] = DEFAULT_POINTS,
    *,
    scale: float = 1e3,
    suffix: str = "_ms",
) -> Dict[str, float]:
    """Latency percentiles of ``samples`` (seconds), scaled to milliseconds.

    Returns ``{"p50_ms": ..., "p95_ms": ..., ...}`` for the requested
    ``points`` (percent values).  An empty sample set reports zeros so
    callers can embed the summary unconditionally.

    >>> percentiles([], points=(50,))
    {'p50_ms': 0.0}
    """
    ordered = sorted(samples)
    summary: Dict[str, float] = {}
    for point in points:
        label = f"p{point:g}{suffix}"
        summary[label] = (
            quantile(ordered, point / 100.0) * scale if ordered else 0.0
        )
    return summary


def bench_json(payload: Dict[str, Any]) -> str:
    """The canonical serialization of a bench payload (stable key order)."""
    return json.dumps(payload, indent=2, sort_keys=True, default=repr)


def _validate_bench_shape(payload: Dict[str, Any]) -> None:
    for key in ("bench", "unit", "backends"):
        if key not in payload:
            raise InvalidParameterError(
                f"bench payload is missing the canonical {key!r} key"
            )
    for name, values in payload["backends"].items():
        if "mean_s" not in values:
            raise InvalidParameterError(
                f"bench backend {name!r} is missing its 'mean_s' entry"
            )
    if not any(
        key.startswith(("speedup_", "retention_", "throughput_retention"))
        for key in payload
    ):
        raise InvalidParameterError(
            "bench payload carries no speedup_*/retention_* headline ratio"
        )


def write_bench_artifact(
    out_dir, name: str, payload: Dict[str, Any], environment: Optional[Dict] = None
) -> Path:
    """Validate the canonical shape, stamp the environment, write the file."""
    _validate_bench_shape(payload)
    payload = dict(payload)
    payload["environment"] = environment or {
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    path = Path(out_dir) / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(bench_json(payload) + "\n", encoding="utf-8")
    return path


def bench_summary_line(name: str, payload: Dict[str, Any]) -> str:
    """One console line: per-backend mean microseconds + the headline ratio."""
    summary = {
        backend: round(values["mean_s"] * 1e6, 1)
        for backend, values in payload["backends"].items()
    }
    headline = next(
        key
        for key in payload
        if key.startswith(("speedup_", "retention_", "throughput_retention"))
    )
    return f"{name}: mean us/op {summary} ({payload[headline]:.2f}x)"
