"""Async serving layer: the multi-tenant micro-batching gateway.

The ingress the execution stack was built to feed: an :mod:`asyncio`
gateway (:class:`~repro.serving.gateway.ServingGateway`) accepts concurrent
``score`` / ``scores`` / ``top_k`` requests for any number of registered
tenants (one :class:`~repro.session.EgoSession` each), coalesces each
tenant's requests inside a small time/size micro-batch window into single
:meth:`~repro.session.EgoSession.scores_batch` passes, and streams the
answers back — while every tenant's parallel work rides one shared
:class:`~repro.parallel.runtime.WorkerPool` and ships its CSR payload into
one shared :class:`~repro.parallel.runtime.PayloadStore` keyed by
``(graph_id, version)``.

:mod:`repro.serving.loadgen` drives the gateway with a configurable fleet
of concurrent async clients and reports qps / latency percentiles against
the pre-gateway one-session-per-query baseline — shared by the ``serve``
CLI subcommand, ``benchmarks/bench_serving.py`` and ``benchmarks/smoke.py``.
:mod:`repro.serving.metrics` holds the shared measurement vocabulary —
percentile math, the canonical benchmark-JSON serializer and the artifact
writer — used by the load generators, the SLO harness and every benchmark
script.
"""

from repro.serving.gateway import GatewayStats, ServingGateway
from repro.serving.loadgen import run_serving_benchmark
from repro.serving.metrics import (
    bench_json,
    bench_summary_line,
    percentiles,
    quantile,
    write_bench_artifact,
)

__all__ = [
    "ServingGateway",
    "GatewayStats",
    "run_serving_benchmark",
    "percentiles",
    "quantile",
    "bench_json",
    "bench_summary_line",
    "write_bench_artifact",
]
